package eval

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/distctx"
	"repro/internal/stats"
)

// AblationResult compares design choices of Step 3 (Section IV-C): the
// ranking statistic (log-likelihood vs. chi-square vs. raw frequency
// shift) and the shift gating (both tests vs. each alone).
type AblationResult struct {
	Variants []AblationVariant
}

// AblationVariant is one configuration's outcome.
type AblationVariant struct {
	Name string
	// Candidates passing the gates.
	Candidates int
	// UsefulAtK: fraction of the top-K ranked terms that denote true
	// facets (the cheap usefulness oracle, without a judging round).
	UsefulAtK float64
	// RecallAtK against the ground truth.
	RecallAtK float64
}

// Ablation runs the variants on the All×All cell of a dataset.
func Ablation(dr *DataRun, topK int) (*AblationResult, error) {
	if topK == 0 {
		topK = 100
	}
	important := dr.Important(ExtAll)
	context := core.DeriveContext(important, dr.Lab.Resources(ResourceOrder...), labCache(dr))
	gt := dr.Pool.BuildGroundTruth(dr.DS, dr.SampleIndices(1000))

	variants := []struct {
		name string
		opts core.AnalyzeOptions
	}{
		{"log-likelihood + both shifts (paper)", core.AnalyzeOptions{}},
		{"chi-square + both shifts", core.AnalyzeOptions{Scorer: stats.ChiSquare}},
		{"raw Shift_f ranking + both shifts", core.AnalyzeOptions{Scorer: func(df, dfC, n int) float64 {
			return float64(dfC - df)
		}}},
		{"log-likelihood, Shift_f only", core.AnalyzeOptions{SkipShiftR: true}},
		{"log-likelihood, Shift_r only", core.AnalyzeOptions{SkipShiftF: true}},
		{"log-likelihood, no shift gates", core.AnalyzeOptions{SkipShiftF: true, SkipShiftR: true}},
	}
	res := &AblationResult{}
	for _, v := range variants {
		r := core.AnalyzeWith(dr.DS.Corpus, context, topK, v.opts)
		terms := r.FacetTermStrings()
		res.Variants = append(res.Variants, AblationVariant{
			Name:       v.name,
			Candidates: len(r.Candidates),
			UsefulAtK:  dr.Pool.UsefulRate(terms),
			RecallAtK:  gt.Recall(terms),
		})
	}
	return res, nil
}

// labCache exposes the lab's shared resource cache to the ablations.
func labCache(dr *DataRun) *core.ResourceCache { return dr.Lab.cache }

// ResourceAblationRow is one resource subset's scored outcome: the Step-3
// candidate yield, the top-K term quality (usefulness and ground-truth
// term recall), and the quality of the subsumption hierarchy built from
// those terms (facet precision/recall via ScoreForest).
type ResourceAblationRow struct {
	// Subset is the row label: "none", "corpus-only", "external-only",
	// "mixed", or "external - <resource>" pricing rows.
	Subset string
	// Resources lists the context resources the row ran with.
	Resources []string
	// Candidates passing both shift gates.
	Candidates int
	// UsefulAtK: fraction of the top-K terms denoting true facets.
	UsefulAtK float64
	// TermRecall of the top-K terms against the validated ground truth.
	TermRecall float64
	// FacetPrecision / FacetRecall / OrphanRate score the subsumption
	// forest built from the row's terms (see ForestScore).
	FacetPrecision float64
	FacetRecall    float64
	OrphanRate     float64
	// Millis is the row's wall-clock: context derivation + analysis +
	// hierarchy construction + scoring.
	Millis float64
}

// ResourceAblationResult is the full subset table.
type ResourceAblationResult struct {
	Profile string
	Docs    int
	TopK    int
	Rows    []ResourceAblationRow
}

// ResourceAblation prices what each context resource buys: it runs the
// full pipeline cell (All extractors, TopK facet terms, subsumption
// hierarchy, ground-truth scoring) for every interesting resource subset
// — no context at all, the corpus-only distributional model, the four
// external resources, the mixed set, and leave-one-out pricing rows —
// entirely offline (the corpus-only row needs no external service, and
// the "external" services are the lab's synthesized substrates). The
// distributional model is built once from the same Step-1 important
// terms every row shares.
func ResourceAblation(ctx context.Context, dr *DataRun, topK, workers int) (*ResourceAblationResult, error) {
	if topK == 0 {
		topK = 100
	}
	important := dr.Important(ExtAll)
	gt := dr.Pool.BuildGroundTruth(dr.DS, dr.SampleIndices(1000))
	// LLR weighting, matching the facade's corpus-only resource: its
	// evidence-mass preference recovers ancestor structure that PPMI's
	// rare-correlate lift does not (this report is where that was
	// established).
	model, err := distctx.Build(ctx, important, distctx.Config{Weight: distctx.WeightLLR, Workers: workers})
	if err != nil {
		return nil, err
	}

	external := dr.Lab.Resources(ResourceOrder...)
	subsets := []struct {
		name      string
		resources []core.Resource
	}{
		{"none", nil},
		{"corpus-only", []core.Resource{model}},
		{"external-only", external},
		{"mixed", append(append([]core.Resource{}, external...), model)},
	}
	for i, name := range ResourceOrder {
		rest := make([]core.Resource, 0, len(external)-1)
		rest = append(rest, external[:i]...)
		rest = append(rest, external[i+1:]...)
		subsets = append(subsets, struct {
			name      string
			resources []core.Resource
		}{"external - " + name, rest})
	}

	res := &ResourceAblationResult{Profile: dr.DS.Profile.Name, Docs: dr.DS.Corpus.Len(), TopK: topK}
	for _, s := range subsets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		context, _, err := core.DeriveContextReport(ctx, important, s.resources, labCache(dr), workers)
		if err != nil {
			return nil, err
		}
		r := core.AnalyzeWith(dr.DS.Corpus, context, topK, core.AnalyzeOptions{Workers: workers})
		r.Important = important
		r.Context = context
		r.Resources = s.resources
		terms := r.FacetTermStrings()
		forest, err := BuildForest(dr, r, topK)
		if err != nil {
			return nil, err
		}
		score := ScoreForest(dr.Pool, forest, terms)
		res.Rows = append(res.Rows, ResourceAblationRow{
			Subset:         s.name,
			Resources:      resourceNames(s.resources),
			Candidates:     len(r.Candidates),
			UsefulAtK:      dr.Pool.UsefulRate(terms),
			TermRecall:     gt.Recall(terms),
			FacetPrecision: score.Precision,
			FacetRecall:    score.Recall,
			OrphanRate:     score.OrphanRate,
			Millis:         float64(time.Since(start).Nanoseconds()) / 1e6,
		})
	}
	return res, nil
}

func resourceNames(rs []core.Resource) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name()
	}
	return out
}

// Format renders the subset table.
func (r *ResourceAblationResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s, %d docs, top-%d\n", r.Profile, r.Docs, r.TopK)
	fmt.Fprintf(&sb, "%-26s %10s %9s %10s %10s %9s %8s %9s\n",
		"Subset", "Candidates", "Useful@K", "TermRec", "FacetPrec", "FacetRec", "Orphan", "Millis")
	sb.WriteString(strings.Repeat("-", 98) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-26s %10d %9.3f %10.3f %10.3f %9.3f %7.0f%% %9.1f\n",
			row.Subset, row.Candidates, row.UsefulAtK, row.TermRecall,
			row.FacetPrecision, row.FacetRecall, 100*row.OrphanRate, row.Millis)
	}
	return sb.String()
}

// AblationBench is the BENCH_ablation.json envelope, following the
// repository's bench-trajectory convention (cf. BakeoffBench).
type AblationBench struct {
	Benchmark  string          `json:"benchmark"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Profile    string          `json:"profile"`
	Docs       int             `json:"docs"`
	TopK       int             `json:"top_k"`
	Points     []AblationPoint `json:"points"`
}

// AblationPoint is one subset row in the bench envelope.
type AblationPoint struct {
	Subset         string   `json:"subset"`
	Resources      []string `json:"resources"`
	Candidates     int      `json:"candidates"`
	UsefulAtK      float64  `json:"useful_at_k"`
	TermRecall     float64  `json:"term_recall"`
	FacetPrecision float64  `json:"facet_precision"`
	FacetRecall    float64  `json:"facet_recall"`
	OrphanRate     float64  `json:"orphan_rate"`
	Millis         float64  `json:"millis"`
}

// Bench converts the report into its BENCH_ablation.json envelope.
func (r *ResourceAblationResult) Bench() AblationBench {
	env := AblationBench{
		Benchmark:  "resourceablation",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Profile:    r.Profile,
		Docs:       r.Docs,
		TopK:       r.TopK,
	}
	for _, row := range r.Rows {
		env.Points = append(env.Points, AblationPoint{
			Subset:         row.Subset,
			Resources:      row.Resources,
			Candidates:     row.Candidates,
			UsefulAtK:      row.UsefulAtK,
			TermRecall:     row.TermRecall,
			FacetPrecision: row.FacetPrecision,
			FacetRecall:    row.FacetRecall,
			OrphanRate:     row.OrphanRate,
			Millis:         row.Millis,
		})
	}
	return env
}

// Format renders the ablation table.
func (r *AblationResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %12s %12s %12s\n", "Variant", "Candidates", "Useful@K", "Recall@K")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, v := range r.Variants {
		fmt.Fprintf(&sb, "%-42s %12d %12.3f %12.3f\n", v.Name, v.Candidates, v.UsefulAtK, v.RecallAtK)
	}
	return sb.String()
}
