// Package eval contains the experiment runners that regenerate every
// table and figure of the paper's evaluation (Section V), plus the two
// ablations called out in DESIGN.md. Each runner produces a printable
// structure whose layout matches the paper's.
package eval

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mturk"
	"repro/internal/ner"
	"repro/internal/newsgen"
	"repro/internal/ontology"
	"repro/internal/remote"
	"repro/internal/textdb"
	"repro/internal/websearch"
	"repro/internal/wiki"
	"repro/internal/wordnet"
	"repro/internal/yterms"
)

// Extractor and resource display names, matching the paper's tables.
const (
	ExtNE        = "NE"
	ExtYahoo     = "Yahoo"
	ExtWikipedia = "Wikipedia"

	ResGoogle    = "Google"
	ResWordNet   = "WordNet Hypernyms"
	ResWikiSyn   = "Wikipedia Synonyms"
	ResWikiGraph = "Wikipedia Graph"
)

// ExtractorOrder and ResourceOrder are the paper's table orders.
var (
	ExtractorOrder = []string{ExtNE, ExtYahoo, ExtWikipedia}
	ResourceOrder  = []string{ResGoogle, ResWordNet, ResWikiSyn, ResWikiGraph}
)

// Lab is the shared experimental apparatus: the ground-truth knowledge
// base and every substrate built over it. One Lab serves all datasets.
type Lab struct {
	KB      *ontology.KB
	Wiki    *wiki.Wiki
	WordNet *wordnet.DB
	Engine  *websearch.Engine
	Clock   *remote.Clock

	resources map[string]core.Resource
	cache     *core.ResourceCache
	seed      uint64
}

// NewLab builds the apparatus. The WordNet database is generated into the
// real file format and loaded back through the parser.
func NewLab(seed uint64) (*Lab, error) {
	kb, err := ontology.Build(ontology.Config{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("eval: build kb: %w", err)
	}
	w, err := wiki.Build(kb, wiki.Config{Seed: seed + 1})
	if err != nil {
		return nil, fmt.Errorf("eval: build wiki: %w", err)
	}
	wn, err := wordnet.FromIsa(ontology.WordNetLexicon(kb))
	if err != nil {
		return nil, fmt.Errorf("eval: build wordnet: %w", err)
	}
	lab := &Lab{
		KB:      kb,
		Wiki:    w,
		WordNet: wn,
		Engine:  websearch.NewEngineFromWiki(w),
		Clock:   remote.NewClock(),
		cache:   core.NewResourceCache(),
		seed:    seed,
	}
	lab.resources = map[string]core.Resource{
		ResGoogle:    websearch.NewResource(lab.Engine, 10, 10, lab.Clock),
		ResWordNet:   wordnet.NewResource(wn, 2),
		ResWikiSyn:   wiki.NewSynonymResource(w),
		ResWikiGraph: wiki.NewGraphResource(w, 50),
	}
	return lab, nil
}

// Resource returns a resource by paper name; it panics on unknown names
// (names are compile-time constants).
func (l *Lab) Resource(name string) core.Resource {
	r, ok := l.resources[name]
	if !ok {
		panic("eval: unknown resource " + name)
	}
	return r
}

// Resources maps names to resources in ResourceOrder.
func (l *Lab) Resources(names ...string) []core.Resource {
	out := make([]core.Resource, len(names))
	for i, n := range names {
		out[i] = l.Resource(n)
	}
	return out
}

// Gazetteer returns the entity names and variants the NE tagger is primed
// with (the stand-in for LingPipe's trained model).
func (l *Lab) Gazetteer() []string {
	var names []string
	for _, e := range l.KB.Entities() {
		names = append(names, e.Display)
		names = append(names, e.Variants...)
	}
	sort.Strings(names)
	return names
}

// DataRun binds the lab to one generated dataset and caches per-extractor
// important-term identification, so that every cell of a table pays for
// extraction once.
type DataRun struct {
	Lab  *Lab
	DS   *newsgen.Dataset
	Pool *mturk.Pool

	extractors map[string]core.Extractor
	important  map[string][][]string
}

// NewDataRun generates the dataset for a profile and prepares extractors.
func (l *Lab) NewDataRun(p newsgen.Profile, seed uint64) (*DataRun, error) {
	ds, err := newsgen.Generate(l.KB, p, seed)
	if err != nil {
		return nil, err
	}
	return l.NewDataRunFrom(ds, seed)
}

// NewDataRunFrom wraps an existing dataset.
func (l *Lab) NewDataRunFrom(ds *newsgen.Dataset, seed uint64) (*DataRun, error) {
	// Background statistics for the Yahoo-style extractor: the corpus's
	// own document frequencies.
	bg := textdb.NewDFTable(ds.Corpus.Dict())
	for i := 0; i < ds.Corpus.Len(); i++ {
		bg.AddDoc(ds.Corpus.DocTerms(textdb.DocID(i)))
	}
	dr := &DataRun{
		Lab:  l,
		DS:   ds,
		Pool: mturk.NewPool(l.KB, mturk.Config{Seed: seed + 100}),
		extractors: map[string]core.Extractor{
			ExtNE:        ner.New(ner.WithGazetteer(l.Gazetteer())),
			ExtYahoo:     yterms.New(bg, 12, l.Clock),
			ExtWikipedia: wiki.NewTitleExtractor(l.Wiki),
		},
		important: map[string][][]string{},
	}
	return dr, nil
}

// Extractor returns an extractor by paper name.
func (dr *DataRun) Extractor(name string) core.Extractor {
	e, ok := dr.extractors[name]
	if !ok {
		panic("eval: unknown extractor " + name)
	}
	return e
}

// Important returns (computing once) the per-document important terms for
// an extractor configuration: a single extractor name or ExtAll.
const ExtAll = "All"

// ResAll selects all four resources.
const ResAll = "All"

func (dr *DataRun) Important(extractor string) [][]string {
	if cached, ok := dr.important[extractor]; ok {
		return cached
	}
	var out [][]string
	if extractor == ExtAll {
		// Union of the three extractors per document, preserving order.
		parts := make([][][]string, 0, len(ExtractorOrder))
		for _, name := range ExtractorOrder {
			parts = append(parts, dr.Important(name))
		}
		out = make([][]string, dr.DS.Corpus.Len())
		for d := range out {
			seen := map[string]bool{}
			for _, p := range parts {
				for _, t := range p[d] {
					if !seen[t] {
						seen[t] = true
						out[d] = append(out[d], t)
					}
				}
			}
		}
	} else {
		out = core.IdentifyImportant(dr.DS.Corpus, []core.Extractor{dr.Extractor(extractor)}, 0)
	}
	dr.important[extractor] = out
	return out
}

// resourceSet resolves a resource configuration name to resources.
func (dr *DataRun) resourceSet(resource string) []core.Resource {
	if resource == ResAll {
		return dr.Lab.Resources(ResourceOrder...)
	}
	return []core.Resource{dr.Lab.Resource(resource)}
}

// RunCell executes the pipeline for one (extractor config, resource
// config) cell and returns the analysis result.
func (dr *DataRun) RunCell(extractor, resource string, topK int) *core.Result {
	important := dr.Important(extractor)
	context := core.DeriveContext(important, dr.resourceSet(resource), dr.Lab.cache)
	res := core.AnalyzeWith(dr.DS.Corpus, context, topK, core.AnalyzeOptions{})
	res.Important = important
	res.Context = context
	res.Resources = dr.resourceSet(resource)
	return res
}

// SampleIndices returns up to n story indices (the paper annotates a
// 1,000-story random sample of the larger datasets; we take a
// deterministic prefix, which is equivalent for generated data).
func (dr *DataRun) SampleIndices(n int) []int {
	if n > dr.DS.Corpus.Len() {
		n = dr.DS.Corpus.Len()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
