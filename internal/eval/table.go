package eval

import (
	"fmt"
	"strings"
)

// Table is a resources × extractors grid of metric values, formatted like
// the paper's Tables II–VII.
type Table struct {
	Title     string
	RowHeader string // "External Resource"
	ColHeader string // "Term Extractors"
	Cols      []string
	Rows      []TableRow
}

// TableRow is one labeled row of values.
type TableRow struct {
	Name   string
	Values []float64
}

// Cell returns the value at (rowName, colName), or (0, false).
func (t *Table) Cell(rowName, colName string) (float64, bool) {
	col := -1
	for i, c := range t.Cols {
		if c == colName {
			col = i
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Name == rowName && col < len(r.Values) {
			return r.Values[col], true
		}
	}
	return 0, false
}

// Format renders the table in the paper's layout.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	width := 22
	for _, r := range t.Rows {
		if len(r.Name) > width {
			width = len(r.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s", width+2, t.RowHeader)
	for _, c := range t.Cols {
		fmt.Fprintf(&sb, "%12s", c)
	}
	sb.WriteString("\n")
	sb.WriteString(strings.Repeat("-", width+2+12*len(t.Cols)))
	sb.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", width+2, r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(&sb, "%12.3f", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header row;
// the experiment harness writes these next to the text tables so results
// can be loaded into spreadsheets or plotting scripts.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(csvEscape(t.RowHeader))
	for _, c := range t.Cols {
		sb.WriteString(",")
		sb.WriteString(csvEscape(c))
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		sb.WriteString(csvEscape(r.Name))
		for _, v := range r.Values {
			fmt.Fprintf(&sb, ",%.4f", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
