package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/overload"
	"repro/internal/serve"
)

// TestCoordinatorShedsSpentBudget: when the caller's deadline budget is
// already spent, the coordinator sheds BEFORE issuing a single shard
// sub-request — a well-formed 503 with Retry-After and the overloaded
// envelope, counted in cluster.budget_shed.
func TestCoordinatorShedsSpentBudget(t *testing.T) {
	iface := clusterFixture(t, 60)
	reg := obsv.NewRegistry()
	topo := buildTopology(t, iface, Config{Timeout: 5 * time.Second, Metrics: reg})

	req := httptest.NewRequest(http.MethodGet, "/api/v1/facets", nil)
	ctx, cancel := context.WithDeadline(req.Context(), time.Now().Add(-time.Second))
	defer cancel()
	rec := httptest.NewRecorder()
	topo.coord.ServeHTTP(rec, req.WithContext(ctx))

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("missing Retry-After on budget shed")
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code != serve.ErrCodeOverloaded {
		t.Errorf("body %q, want envelope code %q", rec.Body.String(), serve.ErrCodeOverloaded)
	}
	if n := reg.Snapshot().Counters["cluster.budget_shed"]; n != 1 {
		t.Errorf("cluster.budget_shed = %d, want 1", n)
	}
}

// TestCoordinatorAdmissionSheds: a Governor on the coordinator applies
// the same per-class admission control the single node uses — with the
// read class saturated, scatter-gather routes shed 503 while probes and
// metrics keep answering.
func TestCoordinatorAdmissionSheds(t *testing.T) {
	iface := clusterFixture(t, 60)
	reg := obsv.NewRegistry()
	one := overload.Config{InitialLimit: 1, MaxLimit: 1, Queue: -1}
	gov := overload.NewGovernor(overload.GovernorConfig{Read: one, Expensive: one, Write: one, Metrics: reg})
	topo := buildTopology(t, iface, Config{Timeout: 5 * time.Second, Metrics: reg, Governor: gov})

	release, err := gov.Acquire(context.Background(), overload.ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	status, body := fetchBytes(t, topo.coordSrv.URL, "/api/v1/facets")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("saturated coordinator: status %d, want 503: %s", status, body)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != serve.ErrCodeOverloaded {
		t.Errorf("body %q, want envelope code %q", body, serve.ErrCodeOverloaded)
	}
	for _, path := range []string{"/api/v1/healthz", "/api/v1/readyz", "/api/v1/metrics"} {
		if status, _ := fetchBytes(t, topo.coordSrv.URL, path); status != http.StatusOK {
			t.Errorf("%s during saturation: status %d, want 200", path, status)
		}
	}
	release(0)
	if status, _ := fetchBytes(t, topo.coordSrv.URL, "/api/v1/facets"); status != http.StatusOK {
		t.Errorf("post-release status %d, want 200", status)
	}
}

// TestBudgetPropagatesToShards: the coordinator re-encodes the caller's
// REMAINING budget on every scattered sub-request, so each shard sees
// X-Deadline-Budget no larger than what the client sent.
func TestBudgetPropagatesToShards(t *testing.T) {
	iface := clusterFixture(t, 60)
	names := []string{"shard-a", "shard-b", "shard-c"}
	ring, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[string][]string{}
	var peers []Peer
	for _, name := range names {
		sh, err := BuildShard(iface, ring, name)
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.New(sh.Interface(), name)
		sh.Register(srv)
		name := name
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			seen[name] = append(seen[name], r.Header.Get(overload.BudgetHeader))
			mu.Unlock()
			srv.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		peers = append(peers, Peer{Name: name, BaseURL: ts.URL})
	}
	coord, err := NewCoordinator(peers, Config{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	const clientMS = 137
	req := httptest.NewRequest(http.MethodGet, "/api/v1/facets", nil)
	req.Header.Set(overload.BudgetHeader, strconv.Itoa(clientMS))
	rec := httptest.NewRecorder()
	coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}

	mu.Lock()
	defer mu.Unlock()
	for _, name := range names {
		if len(seen[name]) == 0 {
			t.Errorf("shard %s received no sub-request", name)
			continue
		}
		for _, raw := range seen[name] {
			ms, err := strconv.Atoi(raw)
			if err != nil {
				t.Errorf("shard %s got budget %q, want integer milliseconds", name, raw)
				continue
			}
			if ms < 1 || ms > clientMS {
				t.Errorf("shard %s got budget %dms, want within (0, %d]", name, ms, clientMS)
			}
		}
	}
}
