package facet_test

import (
	"fmt"

	facet "repro"
)

// The canonical end-to-end flow: simulate an environment, index a news
// corpus, extract facet terms, build the hierarchy, and browse.
func Example() {
	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: 42})
	if err != nil {
		panic(err)
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 150, 7)
	if err != nil {
		panic(err)
	}
	sys, err := facet.NewSystem(env, facet.Options{TopK: 50})
	if err != nil {
		panic(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		panic(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		panic(err)
	}
	b, err := res.Browser(h)
	if err != nil {
		panic(err)
	}
	fmt.Printf("extracted %d facet terms over %d documents\n", len(res.Facets), sys.Len())
	fmt.Printf("browsable root facets: %v\n", len(b.Children("", facet.Selection{})) > 0)
	// Output:
	// extracted 50 facet terms over 150 documents
	// browsable root facets: true
}

// Custom domain tools plug into the same pipeline seams the built-in
// extractors and resources use (the paper's Section VII scenario).
func ExampleNewGlossaryExtractor() {
	gloss, err := facet.NewGlossaryExtractor("Finance", []string{"hedge fund", "margin"})
	if err != nil {
		panic(err)
	}
	terms := gloss.Extract("The hedge fund faced margin calls.")
	fmt.Println(terms)
	// Output: [hedge fund margin]
}

func ExampleNewGlossaryResource() {
	thesaurus, err := facet.NewGlossaryResource("Finance", map[string][]string{
		"hedge fund": {"asset management", "alternative investments"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(thesaurus.Context("Hedge Fund"))
	// Output: [alternative investments asset management]
}
