package browse

import (
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/obsv"
)

func TestCacheKeyNormalizesTerms(t *testing.T) {
	a := cacheKey(Selection{Terms: []string{"france", "europe", "france"}}, 1)
	b := cacheKey(Selection{Terms: []string{"europe", "france"}}, 1)
	if a != b {
		t.Fatalf("term order/duplicates should not change the key:\n%q\n%q", a, b)
	}
	if cacheKey(Selection{Terms: []string{"europe"}}, 1) == cacheKey(Selection{Terms: []string{"france"}}, 1) {
		t.Fatal("different terms must produce different keys")
	}
}

func TestCacheKeySeparatesFields(t *testing.T) {
	// A term must never collide with a query (the classic concatenation
	// bug), and the epoch must partition the key space.
	if cacheKey(Selection{Terms: []string{"paris"}}, 1) == cacheKey(Selection{Query: "paris"}, 1) {
		t.Fatal("facet term and keyword query must not share a key")
	}
	if cacheKey(Selection{}, 1) == cacheKey(Selection{}, 2) {
		t.Fatal("different epochs must not share a key")
	}
	from := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	if cacheKey(Selection{From: from}, 1) == cacheKey(Selection{To: from}, 1) {
		t.Fatal("a From bound and an identical To bound must not share a key")
	}
}

func TestQueryCacheLRUEviction(t *testing.T) {
	c := newQueryCache(2)
	s := bitset.New(1)
	c.put("a", s)
	c.put("b", s)
	if _, ok := c.get("a"); !ok { // touch a: b becomes the eviction victim
		t.Fatal("a should be cached")
	}
	c.put("c", s)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be cached")
	}
}

func TestQueryCacheHitCounters(t *testing.T) {
	b, _ := fixture(t)
	reg := obsv.NewRegistry()
	b.SetMetrics(reg)
	sel := Selection{Terms: []string{"europe"}}
	first := b.Docs(sel)
	second := b.Docs(Selection{Terms: []string{"europe"}})
	if len(first) != len(second) {
		t.Fatalf("cached answer differs: %v vs %v", first, second)
	}
	if hits := reg.Counter("browse.query_cache.hits").Value(); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if misses := reg.Counter("browse.query_cache.misses").Value(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if n := reg.Histogram("browse.query_latency").Count(); n != 1 {
		t.Fatalf("query_latency observations = %d, want 1 (only the uncached resolution)", n)
	}
}

func TestResetQueryCache(t *testing.T) {
	b, _ := fixture(t)
	b.Docs(Selection{Terms: []string{"europe"}})
	b.Docs(Selection{Terms: []string{"sports"}})
	if b.QueryCacheLen() == 0 {
		t.Fatal("cache should have entries after queries")
	}
	b.ResetQueryCache()
	if n := b.QueryCacheLen(); n != 0 {
		t.Fatalf("cache len after reset = %d, want 0", n)
	}
}

func TestEpochPartitionsCache(t *testing.T) {
	b, _ := fixture(t)
	sel := Selection{Terms: []string{"europe"}}
	b.SetEpoch(1)
	b.Docs(sel)
	b.SetEpoch(2)
	b.Docs(sel)
	if n := b.QueryCacheLen(); n != 2 {
		t.Fatalf("cache len = %d, want 2 (one entry per epoch)", n)
	}
}
