package resilient

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/remote"
)

// flaky is a ResourceErr that fails the first failN calls per term, then
// succeeds; permanent failure when failN < 0.
type flaky struct {
	name  string
	failN int
	calls map[string]int
}

func newFlaky(name string, failN int) *flaky {
	return &flaky{name: name, failN: failN, calls: map[string]int{}}
}

func (f *flaky) Name() string { return f.name }

func (f *flaky) ContextErr(ctx context.Context, term string) ([]string, error) {
	n := f.calls[term]
	f.calls[term] = n + 1
	if f.failN < 0 || n < f.failN {
		return nil, errors.New("flaky: boom")
	}
	return []string{"ctx-of-" + term}, nil
}

func TestRetryUntilSuccess(t *testing.T) {
	inner := newFlaky("svc", 2)
	r := Wrap(inner, Config{MaxAttempts: 4, Breaker: BreakerConfig{Threshold: -1}})
	out, err := r.ContextErr(context.Background(), "jazz")
	if err != nil {
		t.Fatalf("ContextErr: %v", err)
	}
	if len(out) != 1 || out[0] != "ctx-of-jazz" {
		t.Fatalf("out = %v", out)
	}
	if got := inner.calls["jazz"]; got != 3 {
		t.Fatalf("delivered attempts = %d, want 3", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	inner := newFlaky("svc", -1)
	r := Wrap(inner, Config{MaxAttempts: 3, Breaker: BreakerConfig{Threshold: -1}})
	if _, err := r.ContextErr(context.Background(), "jazz"); err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if got := inner.calls["jazz"]; got != 3 {
		t.Fatalf("delivered attempts = %d, want 3", got)
	}
	// The infallible view swallows the error into empty context.
	if out := r.Context("jazz"); out != nil {
		t.Fatalf("Context after permanent failure = %v, want nil", out)
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	inner := newFlaky("svc", -1)
	r := Wrap(inner, Config{MaxAttempts: 50, Breaker: BreakerConfig{Threshold: -1}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.ContextErr(ctx, "jazz")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := inner.calls["jazz"]; got > 1 {
		t.Fatalf("delivered attempts after cancel = %d, want <= 1", got)
	}
}

func TestDeadlineTimeoutOnVirtualClock(t *testing.T) {
	clock := remote.NewClock()
	inj := remote.NewInjector(7, clock)
	inj.SetFaults("slow", remote.FaultConfig{
		SlowRate:    1, // every call is slow
		SlowLatency: 500 * time.Millisecond,
	})
	inner := inj.WrapResource(named{"slow"})
	r := Wrap(inner, Config{
		MaxAttempts: 2,
		Deadline:    100 * time.Millisecond,
		Breaker:     BreakerConfig{Threshold: -1},
	})
	_, err := r.ContextErr(context.Background(), "jazz")
	if !errors.Is(err, remote.ErrTimeout) {
		t.Fatalf("err = %v, want remote.ErrTimeout", err)
	}
	// Each attempt charges only the budget, not the full latency.
	if got, want := clock.ServiceElapsed("slow"), 200*time.Millisecond; got != want {
		t.Fatalf("virtual elapsed = %v, want %v", got, want)
	}
}

// named is a trivial infallible resource for injector wrapping.
type named struct{ name string }

func (n named) Name() string                 { return n.name }
func (n named) Context(term string) []string { return []string{n.name + ":" + term} }

func TestBreakerOpensProbesAndCloses(t *testing.T) {
	inner := newFlaky("svc", -1)
	cfg := Config{
		MaxAttempts: 1,
		Breaker:     BreakerConfig{Threshold: 3, Cooldown: 2, Probes: 2},
	}
	r := Wrap(inner, cfg)
	ctx := context.Background()

	// Three failing calls trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := r.ContextErr(ctx, "t"); err == nil {
			t.Fatal("want failure")
		}
	}
	if got := r.Breaker().State(); got != Open {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if r.Ready() == nil {
		t.Fatal("Ready() should fail while open")
	}

	// Next Cooldown calls are shed without reaching the resource.
	delivered := inner.calls["t"]
	for i := 0; i < 2; i++ {
		if _, err := r.ContextErr(ctx, "t"); !errors.Is(err, ErrOpen) {
			t.Fatalf("shed call err = %v, want ErrOpen", err)
		}
	}
	if inner.calls["t"] != delivered {
		t.Fatal("shed calls reached the resource")
	}

	// The resource recovers; the next call is a half-open probe.
	inner.failN = 0
	if _, err := r.ContextErr(ctx, "t"); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if got := r.Breaker().State(); got != HalfOpen {
		t.Fatalf("state after probe 1 = %v, want half-open", got)
	}
	if _, err := r.ContextErr(ctx, "t"); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if got := r.Breaker().State(); got != Closed {
		t.Fatalf("state after probe 2 = %v, want closed", got)
	}
	if err := r.Ready(); err != nil {
		t.Fatalf("Ready() after recovery = %v", err)
	}
}

func TestHalfOpenFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 1, Probes: 2}, nil)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Failure() // trips
	if b.Allow() != ErrOpen {
		t.Fatal("want shed")
	}
	if err := b.Allow(); err != nil { // cooldown elapsed: probe
		t.Fatal(err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := obsv.NewRegistry()
	clock := remote.NewClock()
	inner := newFlaky("svc", 2)
	r := Wrap(inner, Config{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		Breaker:     BreakerConfig{Threshold: -1},
		Clock:       clock,
		Metrics:     reg,
	})
	if _, err := r.ContextErr(context.Background(), "jazz"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("resilient.svc.attempts").Value(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if got := reg.Counter("resilient.svc.retries").Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := reg.Counter("resilient.svc.failures").Value(); got != 2 {
		t.Fatalf("failures = %d, want 2", got)
	}
	if got := reg.Histogram("resilient.svc.latency").Count(); got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
	// Backoff was charged to the virtual clock, not slept.
	if clock.ServiceElapsed("backoff:svc") <= 0 {
		t.Fatal("backoff not charged to clock")
	}
}

func TestTripCounterAndStateGauge(t *testing.T) {
	reg := obsv.NewRegistry()
	inner := newFlaky("svc", -1)
	r := Wrap(inner, Config{
		MaxAttempts: 1,
		Breaker:     BreakerConfig{Threshold: 2, Cooldown: 4, Probes: 1},
		Metrics:     reg,
	})
	for i := 0; i < 2; i++ {
		r.ContextErr(context.Background(), "t")
	}
	if got := reg.Counter("resilient.svc.trips").Value(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	snap := reg.Snapshot()
	v, found := snap.Gauges["resilient.svc.breaker_state"]
	if !found {
		t.Fatal("breaker_state gauge missing from snapshot")
	}
	if v != int64(Open) {
		t.Fatalf("breaker_state gauge = %d, want %d", v, Open)
	}
	// Shed calls count.
	r.ContextErr(context.Background(), "t")
	if got := reg.Counter("resilient.svc.shed").Value(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	g := newGuard("svc", Config{BaseBackoff: 50 * time.Millisecond, MaxBackoff: 400 * time.Millisecond, Seed: 42})
	for attempt := 1; attempt <= 12; attempt++ {
		d1 := g.backoff("key", attempt)
		d2 := g.backoff("key", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic backoff %v vs %v", attempt, d1, d2)
		}
		if d1 < 0 || d1 > 400*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v out of [0, cap]", attempt, d1)
		}
	}
	if g.backoff("key", 1) == g.backoff("other", 1) {
		t.Fatal("jitter should differ across keys (hash collision this unlikely means a bug)")
	}
}

func TestRetryable(t *testing.T) {
	if Retryable(nil) {
		t.Fatal("nil is not retryable")
	}
	if Retryable(ErrOpen) || Retryable(context.Canceled) || Retryable(context.DeadlineExceeded) {
		t.Fatal("open circuit / cancellation are not retryable")
	}
	if !Retryable(errors.New("transient")) || !Retryable(remote.ErrInjected) {
		t.Fatal("ordinary errors are retryable")
	}
}
