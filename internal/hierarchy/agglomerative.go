package hierarchy

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// agglomerativeBuilder is the registered "agglomerative" strategy:
// average-linkage agglomerative clustering over the per-term posting
// bitsets, following the cluster-then-name-then-merge shape of systems
// like OpenClio. Where subsumption asks an asymmetric question ("does x
// appear in almost every document y appears in?"), clustering asks a
// symmetric one ("do x and y cover similar document sets?") and derives
// the hierarchy from the merge order:
//
//  1. cluster — every surviving term starts as its own cluster; pairwise
//     similarity is the Jaccard overlap of posting lists, |x∧y| / |x∨y|,
//     computed with bitset.AndCount (only co-occurring pairs can be
//     similar, so the sweep skips empty intersections).
//  2. name — a cluster is named by its highest-DF member (ties broken
//     lexicographically): the most general term stands for the group.
//  3. merge — the closest pair of clusters (average linkage, Lance–
//     Williams update) merges while similarity ≥ MinSimilarity; the
//     losing cluster's name term attaches as a child of the winning
//     name. Each term therefore gains at most one parent, with
//     df(parent) ≥ df(child), so the forest is acyclic and DF-layered
//     by construction.
//
// The merge order is fully deterministic (ties on similarity resolve by
// the lexicographically smallest name pair) and workers only shard the
// initial similarity matrix, so the forest is identical at every worker
// count.
type agglomerativeBuilder struct{}

// Name implements Builder.
func (agglomerativeBuilder) Name() string { return "agglomerative" }

// Build implements Builder.
func (agglomerativeBuilder) Build(ctx context.Context, terms []string, docTerms [][]string, cfg BuildConfig) (*Forest, error) {
	minSim := cfg.Agglomerative.MinSimilarity
	if minSim == 0 {
		minSim = 0.25
	}
	if minSim < 0 || minSim > 1 {
		return nil, fmt.Errorf("hierarchy: min similarity %v outside [0,1]", minSim)
	}
	if cfg.MinDF == 0 {
		cfg.MinDF = 2
	}
	st := newTermStats(terms, docTerms, cfg.MinDF)
	if cfg.denseSweep {
		return aggBuildDense(ctx, st, minSim, cfg)
	}
	return aggBuildSparse(ctx, st, minSim, cfg)
}

// aggBuildSparse is the default clustering path: the similarity matrix
// is built sparse from the pairIndex — only pairs with nonzero posting
// intersection get an entry, everything else is an implicit 0 — and the
// merge loop scans neighbor maps instead of n×n rows. Zero-DF terms
// (possible when the caller disables the MinDF floor) have no postings,
// so they are never given a cluster slot's worth of work: they start
// inactive and fall out as roots, exactly as the dense reference leaves
// them. The merge order reproduces the dense scan's tie-break (highest
// similarity, then smallest slot pair) explicitly, so the two paths
// render byte-identical forests.
func aggBuildSparse(ctx context.Context, st *termStats, minSim float64, cfg BuildConfig) (*Forest, error) {
	uniq, df, alive := st.uniq, st.df, st.alive
	n := len(alive)

	// Sparse pairwise Jaccard similarity. Row i is written only by the
	// worker that owns it; both directions of each pair compute the same
	// co/union division, so the symmetric entries are identical floats.
	sims := make([]map[int32]float64, n)
	ix := newPairIndex(st)
	nw := sweepWorkers(cfg.Workers)
	scratches := make([]*pairScratch, nw)
	counts := make([]pairCounts, nw)
	err := parallel.For(ctx, n, cfg.Workers, func(w, i int) {
		if df[alive[i]] == 0 {
			// Degenerate posting list: no co-occurrence, no row. The
			// dense sweep would still have iterated its n-1-i pairs.
			counts[w].skipped += int64(n - 1 - i)
			return
		}
		sc := scratches[w]
		if sc == nil {
			sc = ix.newScratch()
			scratches[w] = sc
		}
		var row map[int32]float64
		ix.forCandidates(i, sc, 1, func(j, co int) {
			if j > i {
				// Count each unordered pair once, mirroring the dense
				// sweep's j > i iteration space.
				counts[w].candidate++
				counts[w].evaluated++
			}
			union := df[alive[i]] + df[alive[j]] - co
			if row == nil {
				row = make(map[int32]float64)
			}
			row[int32(j)] = float64(co) / float64(union)
		})
		sims[i] = row
		counts[w].skipped += int64(n-1-i) - countGreater(row, int32(i))
	})
	if err != nil {
		return nil, err
	}
	publishPairCounts(cfg.Metrics, counts, n)

	// Each cluster tracks its size (for the average-linkage update) and
	// its name: the global index of the highest-DF member. Terms with
	// empty posting lists never cluster — skip them up front.
	active := make([]bool, n)
	size := make([]int, n)
	name := make([]int, n)
	for i := 0; i < n; i++ {
		active[i] = df[alive[i]] > 0
		size[i] = 1
		name[i] = alive[i]
	}

	parentOf := make(map[int]int)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Closest active pair. The dense reference scans i asc, j asc
		// with a strict >, i.e. ties resolve to the smallest (i, j)
		// slot pair; neighbor maps iterate in random order, so that
		// tie-break is applied explicitly here.
		bestI, bestJ, bestSim := -1, -1, 0.0
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j32, s := range sims[i] {
				j := int(j32)
				if j <= i || !active[j] || s <= 0 {
					continue
				}
				if s > bestSim || (s == bestSim && (i < bestI || (i == bestI && j < bestJ))) {
					bestI, bestJ, bestSim = i, j, s
				}
			}
		}
		if bestI < 0 || bestSim < minSim {
			break
		}
		// Name the merged cluster and record the hierarchy edge: the
		// less general name attaches under the more general one.
		winner, loser := name[bestI], name[bestJ]
		if aggMoreGeneral(df, uniq, loser, winner) {
			winner, loser = loser, winner
		}
		parentOf[loser] = winner
		// Lance–Williams average-linkage update into slot bestI: fold
		// bestJ's neighbors into bestI's, treating missing entries as
		// the 0.0 they are in the dense matrix. The arithmetic matches
		// the dense update expression exactly (si·a + sj·b with a zero
		// operand yields the same float as dropping the zero term, both
		// sides being non-negative).
		si, sj := float64(size[bestI]), float64(size[bestJ])
		for k32, b := range sims[bestJ] {
			k := int(k32)
			if k == bestI || !active[k] {
				continue
			}
			a := sims[bestI][k32] // 0 when absent, as in the dense matrix
			merged := (si*a + sj*b) / (si + sj)
			sims[bestI][k32] = merged
			sims[k][int32(bestI)] = merged
			delete(sims[k], int32(bestJ))
		}
		for k32, a := range sims[bestI] {
			k := int(k32)
			if k == bestJ || !active[k] {
				continue
			}
			if _, shared := sims[bestJ][k32]; shared {
				continue // folded above
			}
			merged := (si * a) / (si + sj)
			sims[bestI][k32] = merged
			sims[k][int32(bestI)] = merged
		}
		delete(sims[bestI], int32(bestJ))
		size[bestI] += size[bestJ]
		name[bestI] = winner
		active[bestJ] = false
		sims[bestJ] = nil
	}
	return assembleForest(st, parentOf), nil
}

// aggBuildDense is the pre-pruning all-pairs reference, kept verbatim
// (plus the degenerate-postings guard) behind cfg.denseSweep so the
// differential tests can prove the sparse path byte-identical.
func aggBuildDense(ctx context.Context, st *termStats, minSim float64, cfg BuildConfig) (*Forest, error) {
	uniq, sets, df, alive := st.uniq, st.sets, st.df, st.alive
	n := len(alive)

	// Pairwise Jaccard similarity over the alive terms. Row i is written
	// only by the worker that owns it, so the O(n²) AndCount sweep shards
	// like the subsumption sweep.
	sim := make([]float64, n*n)
	err := parallel.For(ctx, n, cfg.Workers, func(_, i int) {
		a := alive[i]
		for j := i + 1; j < n; j++ {
			b := alive[j]
			co := sets[a].AndCount(sets[b])
			if co == 0 {
				continue
			}
			union := df[a] + df[b] - co
			sim[i*n+j] = float64(co) / float64(union)
		}
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sim[j*n+i] = sim[i*n+j]
		}
	}

	// Each cluster tracks its size (for the average-linkage update) and
	// its name: the global index of the highest-DF member.
	active := make([]bool, n)
	size := make([]int, n)
	name := make([]int, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		name[i] = alive[i]
	}

	parentOf := make(map[int]int)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Closest active pair; ties resolve by the lexicographically
		// smallest (name_i, name_j) pair, which is scan order here since
		// clusters keep their creation slots and alive is sorted.
		bestI, bestJ, bestSim := -1, -1, 0.0
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if s := sim[i*n+j]; s > bestSim {
					bestI, bestJ, bestSim = i, j, s
				}
			}
		}
		if bestI < 0 || bestSim < minSim {
			break
		}
		// Name the merged cluster and record the hierarchy edge: the
		// less general name attaches under the more general one.
		winner, loser := name[bestI], name[bestJ]
		if aggMoreGeneral(df, uniq, loser, winner) {
			winner, loser = loser, winner
		}
		parentOf[loser] = winner
		// Lance–Williams average-linkage update into slot bestI.
		for k := 0; k < n; k++ {
			if !active[k] || k == bestI || k == bestJ {
				continue
			}
			merged := (float64(size[bestI])*sim[bestI*n+k] + float64(size[bestJ])*sim[bestJ*n+k]) /
				float64(size[bestI]+size[bestJ])
			sim[bestI*n+k] = merged
			sim[k*n+bestI] = merged
		}
		size[bestI] += size[bestJ]
		name[bestI] = winner
		active[bestJ] = false
	}
	return assembleForest(st, parentOf), nil
}

// aggMoreGeneral reports whether term a should name a merged cluster
// over term b: higher DF first, then lexicographically smaller.
func aggMoreGeneral(df []int, uniq []string, a, b int) bool {
	if df[a] != df[b] {
		return df[a] > df[b]
	}
	return uniq[a] < uniq[b]
}

// countGreater counts the neighbor slots in row strictly above i — the
// unordered pairs row i contributes to the candidate tally.
func countGreater(row map[int32]float64, i int32) int64 {
	var c int64
	for j := range row {
		if j > i {
			c++
		}
	}
	return c
}
