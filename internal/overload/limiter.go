package overload

import (
	"context"
	"sync"
	"time"

	"repro/internal/obsv"
)

// Config parameterizes one Limiter.
type Config struct {
	// InitialLimit is the concurrency limit before any adaptation
	// (0 = 32). MinLimit/MaxLimit bound the AIMD walk (0 = 1 and 4096).
	InitialLimit int
	MinLimit     int
	MaxLimit     int

	// Queue bounds the wait queue absorbing bursts above the limit
	// (0 = 64, negative = no queue: at-limit requests shed
	// immediately). Queued requests are shed when their context
	// deadline fires, so a deadline-carrying caller never waits past
	// its budget.
	Queue int

	// Interval is how many completions make one AIMD adjustment window
	// (0 = 16). Counting completions instead of wall time keeps the
	// schedule deterministic.
	Interval int
	// Threshold is the degradation ratio that triggers a multiplicative
	// decrease: the window's mean latency exceeding Threshold × the
	// moving baseline means the extra concurrency is buying queueing
	// delay, not throughput (0 = 1.5).
	Threshold float64
	// Decrease is the multiplicative backoff factor applied to the
	// limit on degradation (0 = 0.75).
	Decrease float64

	// Now replaces time.Now for queue-wait measurement (nil = time.Now).
	Now func() time.Time
	// Metrics, when set, receives the limiter's instruments under
	// overload.<name>.*.
	Metrics *obsv.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.InitialLimit <= 0 {
		cfg.InitialLimit = 32
	}
	if cfg.MinLimit <= 0 {
		cfg.MinLimit = 1
	}
	if cfg.MaxLimit <= 0 {
		cfg.MaxLimit = 4096
	}
	if cfg.Queue == 0 {
		cfg.Queue = 64
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 16
	}
	if cfg.Threshold <= 1 {
		cfg.Threshold = 1.5
	}
	if cfg.Decrease <= 0 || cfg.Decrease >= 1 {
		cfg.Decrease = 0.75
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.InitialLimit < cfg.MinLimit {
		cfg.InitialLimit = cfg.MinLimit
	}
	if cfg.InitialLimit > cfg.MaxLimit {
		cfg.InitialLimit = cfg.MaxLimit
	}
	return cfg
}

// waiter is one queued request; ready is closed (with the slot already
// transferred) when a release hands over capacity.
type waiter struct {
	ready chan struct{}
}

// Limiter is an adaptive concurrency limiter: at most `limit` requests
// run at once, a bounded FIFO queue absorbs bursts, and the limit
// itself follows an AIMD schedule driven by completion latency against
// a moving baseline.
//
// The baseline is an EWMA of each adjustment window's MINIMUM latency:
// under overload the mean explodes but the fastest request of a window
// still finishes near the true service time, so the floor tracks what
// "healthy" looks like even while the system is drowning — comparing
// the window mean against it detects queueing delay rather than
// chasing it.
//
// All state transitions are functions of the Acquire/Release call
// sequence and the latencies passed to release; the wall clock is read
// only to measure queue wait for the histogram. Tests therefore drive
// exact limit trajectories with synthetic latencies.
type Limiter struct {
	cfg Config

	mu       sync.Mutex
	limit    int
	inflight int
	waiters  []*waiter

	// AIMD window accumulation (guarded by mu).
	windowSum time.Duration
	windowMin time.Duration
	windowN   int
	baseline  float64 // ns; EWMA of window minima
	recent    float64 // ns; last window's mean, for Retry-After hints

	admitted  *obsv.Counter
	shed      *obsv.Counter
	queued    *obsv.Counter
	queueWait *obsv.Histogram
}

// NewLimiter builds a limiter; name scopes its instruments
// (overload.<name>.admitted and friends).
func NewLimiter(name string, cfg Config) *Limiter {
	cfg = cfg.withDefaults()
	l := &Limiter{cfg: cfg, limit: cfg.InitialLimit}
	if reg := cfg.Metrics; reg != nil {
		l.admitted = reg.Counter("overload." + name + ".admitted")
		l.shed = reg.Counter("overload." + name + ".shed")
		l.queued = reg.Counter("overload." + name + ".queued")
		l.queueWait = reg.Histogram("overload." + name + ".queue_wait")
		reg.GaugeFunc("overload."+name+".limit", func() int64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return int64(l.limit)
		})
		reg.GaugeFunc("overload."+name+".inflight", func() int64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return int64(l.inflight)
		})
	}
	return l
}

// Limit returns the current adaptive concurrency limit.
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// Inflight returns the number of currently admitted requests.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Acquire admits one request, queueing when the limiter is full. The
// returned release must be called exactly once with the request's
// observed service latency; it feeds the AIMD schedule and hands the
// slot to the next waiter. A non-nil error is always ErrShed (wrapping
// the context error when the caller's deadline fired in the queue) and
// means no slot was taken.
func (l *Limiter) Acquire(ctx context.Context) (release func(latency time.Duration), err error) {
	// A spent budget sheds before any queueing: the work's answer could
	// not be delivered in time anyway, and the cheapest place to refuse
	// load is before it holds anything.
	if cerr := ctx.Err(); cerr != nil {
		l.countShed()
		return nil, shedErrorCtx(cerr)
	}
	l.mu.Lock()
	if l.inflight < l.limit {
		l.inflight++
		l.mu.Unlock()
		if l.admitted != nil {
			l.admitted.Inc()
		}
		return l.releaseFunc(), nil
	}
	if len(l.waiters) >= l.cfg.Queue {
		l.mu.Unlock()
		l.countShed()
		return nil, shedError("at concurrency limit, wait queue full")
	}
	w := &waiter{ready: make(chan struct{})}
	l.waiters = append(l.waiters, w)
	l.mu.Unlock()
	if l.queued != nil {
		l.queued.Inc()
	}
	start := l.cfg.Now()
	select {
	case <-w.ready:
		// The releasing request transferred its slot: inflight already
		// accounts for this waiter.
		if l.queueWait != nil {
			l.queueWait.Observe(l.cfg.Now().Sub(start))
		}
		if l.admitted != nil {
			l.admitted.Inc()
		}
		return l.releaseFunc(), nil
	case <-ctx.Done():
		l.mu.Lock()
		removed := l.removeWaiter(w)
		l.mu.Unlock()
		if !removed {
			// Lost the race: a release already granted the slot. Take it
			// and put it straight back (no latency sample — this request
			// did no work) so capacity is not leaked.
			<-w.ready
			l.release(0, false)
		}
		l.countShed()
		return nil, shedErrorCtx(ctx.Err())
	}
}

// releaseFunc returns the single-use release closure for one admitted
// request.
func (l *Limiter) releaseFunc() func(time.Duration) {
	var once sync.Once
	return func(latency time.Duration) {
		once.Do(func() { l.release(latency, true) })
	}
}

// release returns one slot: record the latency sample (when the slot
// actually served a request), run the AIMD adjustment at window
// boundaries, then hand the slot to the oldest waiter or free it.
func (l *Limiter) release(latency time.Duration, sample bool) {
	l.mu.Lock()
	if sample {
		l.observe(latency)
	}
	var grant *waiter
	if len(l.waiters) > 0 && l.inflight <= l.limit {
		// Transfer the slot FIFO instead of decrementing: a decrement
		// followed by the waiter re-incrementing would let a barging
		// Acquire overtake the queue.
		grant = l.waiters[0]
		copy(l.waiters, l.waiters[1:])
		l.waiters[len(l.waiters)-1] = nil
		l.waiters = l.waiters[:len(l.waiters)-1]
	} else {
		l.inflight--
	}
	l.mu.Unlock()
	if grant != nil {
		close(grant.ready)
	}
}

// observe accumulates one completion into the AIMD window; the caller
// holds l.mu.
func (l *Limiter) observe(latency time.Duration) {
	if latency < 0 {
		latency = 0
	}
	if l.windowN == 0 || latency < l.windowMin {
		l.windowMin = latency
	}
	l.windowSum += latency
	l.windowN++
	if l.windowN < l.cfg.Interval {
		return
	}
	mean := float64(l.windowSum) / float64(l.windowN)
	minNS := float64(l.windowMin)
	l.windowSum, l.windowMin, l.windowN = 0, 0, 0
	l.recent = mean
	if l.baseline == 0 {
		l.baseline = minNS
	} else {
		// Slow EWMA of window minima: the healthy-latency floor.
		l.baseline += 0.1 * (minNS - l.baseline)
	}
	if mean > l.cfg.Threshold*l.baseline {
		// Latency degraded past the baseline: concurrency above capacity
		// is only buying queueing delay. Multiplicative decrease.
		next := int(float64(l.limit) * l.cfg.Decrease)
		if next >= l.limit {
			next = l.limit - 1
		}
		if next < l.cfg.MinLimit {
			next = l.cfg.MinLimit
		}
		l.limit = next
	} else if l.limit < l.cfg.MaxLimit {
		// Healthy window: probe for more capacity. Additive increase.
		l.limit++
	}
}

// removeWaiter unlinks w; false means a release already granted it. The
// caller holds l.mu.
func (l *Limiter) removeWaiter(w *waiter) bool {
	for i, cand := range l.waiters {
		if cand == w {
			copy(l.waiters[i:], l.waiters[i+1:])
			l.waiters[len(l.waiters)-1] = nil
			l.waiters = l.waiters[:len(l.waiters)-1]
			return true
		}
	}
	return false
}

func (l *Limiter) countShed() {
	if l.shed != nil {
		l.shed.Inc()
	}
}

// retryAfterSeconds estimates when a shed client should retry: roughly
// one queue-drain time at the recent per-request latency, clamped to
// [1s, 30s].
func (l *Limiter) retryAfterSeconds() int {
	l.mu.Lock()
	recent := l.recent
	ahead := l.inflight + len(l.waiters)
	limit := l.limit
	l.mu.Unlock()
	if recent == 0 || limit <= 0 {
		return 1
	}
	sec := int(time.Duration(recent*float64(ahead)/float64(limit)) / time.Second)
	if sec < 1 {
		return 1
	}
	if sec > 30 {
		return 30
	}
	return sec
}

// shedErrorCtx wraps ErrShed around a context error so callers can
// distinguish "queue full" from "budget spent" with errors.Is while the
// middleware treats both as sheds.
func shedErrorCtx(cause error) error {
	if cause == nil {
		return ErrShed
	}
	return &shedCtxError{cause: cause}
}

type shedCtxError struct{ cause error }

func (e *shedCtxError) Error() string { return "overload: shed: " + e.cause.Error() }

// Unwrap exposes both ErrShed and the context error to errors.Is.
func (e *shedCtxError) Unwrap() []error { return []error{ErrShed, e.cause} }
