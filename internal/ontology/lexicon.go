package ontology

// The is-a lexicon is the common-noun hypernym taxonomy from which the
// synthetic WordNet database files are generated (internal/wordnet). Real
// WordNet has deep chains ("war → military action → group action → act →
// event → psychological feature → abstraction → entity"); we keep chains
// 2–5 levels deep with the same character: near hypernyms are informative
// facet-like words, far hypernyms are abstract. Crucially — and this is
// the property the paper's Tables II–IV hinge on — the lexicon covers only
// common nouns: named entities ("Jacques Chirac") and most noun phrases
// have no entry, which is why the WordNet resource shows high precision
// but poor recall, especially under the named-entity extractor.

// isaParent maps a noun to its immediate hypernym. Roots map to "".
var isaParent = map[string]string{
	// Top ontology.
	"entity":        "",
	"abstraction":   "entity",
	"object":        "entity",
	"act":           "entity",
	"event":         "act",
	"attribute":     "abstraction",
	"measure":       "abstraction",
	"group":         "abstraction",
	"relation":      "abstraction",
	"communication": "abstraction",
	"location":      "object",
	"organism":      "object",
	"artifact":      "object",
	"substance":     "object",

	// People.
	"person":      "organism",
	"people":      "group",
	"leader":      "person",
	"politician":  "leader",
	"president":   "leader",
	"senator":     "politician",
	"governor":    "politician",
	"minister":    "politician",
	"chancellor":  "politician",
	"mayor":       "politician",
	"diplomat":    "leader",
	"ambassador":  "diplomat",
	"executive":   "leader",
	"chairman":    "executive",
	"founder":     "executive",
	"general":     "leader",
	"commander":   "leader",
	"admiral":     "commander",
	"cleric":      "leader",
	"bishop":      "cleric",
	"athlete":     "person",
	"player":      "athlete",
	"pitcher":     "player",
	"quarterback": "player",
	"striker":     "player",
	"goalie":      "player",
	"coach":       "person",
	"artist":      "person",
	"musician":    "artist",
	"singer":      "musician",
	"composer":    "musician",
	"painter":     "artist",
	"sculptor":    "artist",
	"actor":       "artist",
	"actress":     "actor",
	"director":    "artist",
	"writer":      "artist",
	"author":      "writer",
	"novelist":    "author",
	"poet":        "writer",
	"journalist":  "writer",
	"reporter":    "journalist",
	"editor":      "journalist",
	"scientist":   "person",
	"researcher":  "scientist",
	"physicist":   "scientist",
	"chemist":     "scientist",
	"biologist":   "scientist",
	"economist":   "scientist",
	"professor":   "person",
	"teacher":     "person",
	"student":     "person",
	"doctor":      "person",
	"surgeon":     "doctor",
	"nurse":       "person",
	"lawyer":      "person",
	"prosecutor":  "lawyer",
	"judge":       "person",
	"soldier":     "person",
	"officer":     "person",
	"detective":   "officer",
	"worker":      "person",
	"farmer":      "worker",
	"engineer":    "person",
	"child":       "person",
	"woman":       "person",
	"man":         "person",
	"victim":      "person",
	"criminal":    "person",
	"terrorist":   "criminal",
	"celebrity":   "person",
	"immigrant":   "person",
	"refugee":     "immigrant",
	"activist":    "person",
	"voter":       "person",
	"candidate":   "person",
	"investor":    "person",
	"consumer":    "person",
	"chef":        "person",
	"designer":    "artist",
	"architect":   "person",
	"astronaut":   "person",
	"pilot":       "person",

	// Groups, institutions, organizations.
	"organization": "group",
	"institution":  "organization",
	"institute":    "institution",
	"government":   "organization",
	"agency":       "organization",
	"bureau":       "agency",
	"commission":   "agency",
	"company":      "organization",
	"corporation":  "company",
	"firm":         "company",
	"bank":         "company",
	"airline":      "company",
	"manufacturer": "company",
	"publisher":    "company",
	"university":   "institution",
	"college":      "university",
	"school":       "institution",
	"hospital":     "institution",
	"museum":       "institution",
	"library":      "institution",
	"foundation":   "organization",
	"charity":      "foundation",
	"church":       "organization",
	"army":         "organization",
	"navy":         "organization",
	"police":       "organization",
	"party":        "organization",
	"union":        "organization",
	"team":         "organization",
	"league":       "organization",
	"parliament":   "government",
	"congress":     "government",
	"senate":       "congress",
	"cabinet":      "government",
	"court":        "institution",
	"tribunal":     "court",
	"family":       "group",
	"community":    "group",
	"society":      "group",
	"crowd":        "group",
	"audience":     "group",
	"committee":    "organization",
	"council":      "organization",
	"delegation":   "group",
	"coalition":    "organization",
	"opposition":   "organization",
	"militia":      "organization",

	// Places.
	"region":    "location",
	"territory": "region",
	"country":   "region",
	"nation":    "country",
	"state":     "region", // the polity sense; see init for the condition sense
	"province":  "region",
	"city":      "region",
	"town":      "city",
	"village":   "town",
	"capital":   "city",
	"district":  "region",
	"continent": "region",
	"island":    "location",
	"border":    "location",
	"coast":     "location",
	"mountain":  "location",
	"river":     "location",
	"ocean":     "location",
	"sea":       "ocean",
	"desert":    "location",
	"forest":    "location",
	"valley":    "location",
	"street":    "location",
	"building":  "artifact",
	"stadium":   "building",
	"airport":   "building",
	"factory":   "building",
	"prison":    "building",
	"palace":    "building",
	"tower":     "building",
	"bridge":    "artifact",
	"home":      "building",
	"house":     "building",

	// Events and acts.
	"war":           "conflict",
	"conflict":      "event",
	"battle":        "war",
	"invasion":      "war",
	"attack":        "event",
	"bombing":       "attack",
	"revolution":    "conflict",
	"uprising":      "revolution",
	"protest":       "event",
	"riot":          "protest",
	"strike":        "protest",
	"election":      "event",
	"referendum":    "election",
	"campaign":      "event",
	"summit":        "meeting",
	"meeting":       "event",
	"conference":    "meeting",
	"negotiation":   "meeting",
	"ceremony":      "event",
	"festival":      "event",
	"parade":        "festival",
	"celebration":   "event",
	"tournament":    "contest",
	"contest":       "event",
	"game":          "contest",
	"match":         "contest",
	"race":          "contest",
	"championship":  "tournament",
	"accident":      "event",
	"crash":         "accident",
	"collision":     "crash",
	"disaster":      "event",
	"earthquake":    "disaster",
	"hurricane":     "storm",
	"storm":         "disaster",
	"flood":         "disaster",
	"tsunami":       "disaster",
	"wildfire":      "disaster",
	"drought":       "disaster",
	"epidemic":      "disaster",
	"famine":        "disaster",
	"crime":         "act",
	"murder":        "crime",
	"robbery":       "crime",
	"fraud":         "crime",
	"bribery":       "crime",
	"kidnapping":    "crime",
	"assault":       "crime",
	"trial":         "event",
	"investigation": "act",
	"arrest":        "act",
	"execution":     "act",
	"treaty":        "agreement",
	"agreement":     "communication",
	"accord":        "agreement",
	"ceasefire":     "agreement",
	"scandal":       "event",
	"crisis":        "state",
	"recession":     "crisis",
	"boom":          "state",
	"inauguration":  "ceremony",
	"wedding":       "ceremony",
	"funeral":       "ceremony",

	// Abstractions, domains, phenomena.
	"politics":       "activity",
	"activity":       "act",
	"diplomacy":      "politics",
	"policy":         "communication",
	"law":            "communication",
	"legislation":    "law",
	"bill":           "law",
	"regulation":     "law",
	"constitution":   "law",
	"economy":        "system",
	"system":         "abstraction",
	"market":         "system",
	"trade":          "activity",
	"commerce":       "trade",
	"business":       "activity",
	"industry":       "business",
	"agriculture":    "industry",
	"manufacturing":  "industry",
	"tourism":        "industry",
	"finance":        "activity",
	"banking":        "finance",
	"investment":     "finance",
	"money":          "measure",
	"currency":       "money",
	"dollar":         "currency",
	"euro":           "currency",
	"budget":         "money",
	"debt":           "money",
	"tax":            "money",
	"price":          "measure",
	"wage":           "money",
	"profit":         "money",
	"revenue":        "money",
	"education":      "activity",
	"religion":       "belief",
	"belief":         "abstraction",
	"faith":          "belief",
	"science":        "knowledge",
	"knowledge":      "abstraction",
	"technology":     "knowledge",
	"medicine":       "science",
	"physics":        "science",
	"chemistry":      "science",
	"biology":        "science",
	"astronomy":      "science",
	"research":       "activity",
	"health":         "state",
	"disease":        "state",
	"cancer":         "disease",
	"infection":      "disease",
	"virus":          "organism",
	"injury":         "state",
	"poverty":        "state",
	"wealth":         "state",
	"unemployment":   "state",
	"inflation":      "state",
	"corruption":     "state",
	"violence":       "state",
	"terrorism":      "violence",
	"security":       "state",
	"freedom":        "state",
	"justice":        "state",
	"peace":          "state",
	"culture":        "abstraction",
	"tradition":      "culture",
	"heritage":       "culture",
	"art":            "activity",
	"music":          "art",
	"jazz":           "music",
	"opera":          "music",
	"film":           "art",
	"theater":        "art",
	"literature":     "art",
	"poetry":         "literature",
	"dance":          "art",
	"fashion":        "art",
	"architecture":   "art",
	"photography":    "art",
	"sport":          "activity",
	"baseball":       "sport",
	"football":       "sport",
	"soccer":         "football",
	"basketball":     "sport",
	"tennis":         "sport",
	"golf":           "sport",
	"hockey":         "sport",
	"boxing":         "sport",
	"cricket":        "sport",
	"cycling":        "sport",
	"swimming":       "sport",
	"athletics":      "sport",
	"weather":        "phenomenon",
	"phenomenon":     "event",
	"climate":        "phenomenon",
	"temperature":    "measure",
	"rain":           "weather",
	"snow":           "weather",
	"wind":           "weather",
	"nature":         "entity",
	"environment":    "state",
	"pollution":      "state",
	"energy":         "phenomenon",
	"electricity":    "energy",
	"transportation": "activity",
	"immigration":    "activity",
	"employment":     "activity",
	"labor":          "activity",
	"journalism":     "activity",
	"advertising":    "activity",
	"entertainment":  "activity",
	"history":        "knowledge",
	"biography":      "communication",
	"competition":    "activity",
	"leadership":     "activity",
	"power":          "state",
	"military":       "organization",

	// Artifacts and media.
	"weapon":     "artifact",
	"missile":    "weapon",
	"bomb":       "weapon",
	"gun":        "weapon",
	"vehicle":    "artifact",
	"car":        "vehicle",
	"truck":      "vehicle",
	"train":      "vehicle",
	"aircraft":   "vehicle",
	"airplane":   "aircraft",
	"helicopter": "aircraft",
	"ship":       "vehicle",
	"submarine":  "ship",
	"rocket":     "vehicle",
	"satellite":  "artifact",
	"computer":   "artifact",
	"internet":   "system",
	"software":   "artifact",
	"network":    "system",
	"telephone":  "artifact",
	"newspaper":  "artifact",
	"book":       "artifact",
	"novel":      "book",
	"magazine":   "artifact",
	"report":     "communication",
	"document":   "communication",
	"speech":     "communication",
	"interview":  "communication",
	"album":      "artifact",
	"song":       "communication",
	"movie":      "artifact",
	"painting":   "artifact",
	"sculpture":  "artifact",
	"drug":       "substance",
	"vaccine":    "drug",
	"oil":        "substance",
	"gas":        "substance",
	"gold":       "substance",
	"steel":      "substance",
	"wheat":      "substance",
	"food":       "substance",
	"wine":       "food",
	"water":      "substance",
	"carbon":     "substance",

	// Animals and plants (Nature facet support).
	"animal":   "organism",
	"mammal":   "animal",
	"bird":     "animal",
	"fish":     "animal",
	"insect":   "animal",
	"elephant": "mammal",
	"whale":    "mammal",
	"tiger":    "mammal",
	"wolf":     "mammal",
	"eagle":    "bird",
	"salmon":   "fish",
	"plant":    "organism",
	"tree":     "plant",
	"crop":     "plant",
	"flower":   "plant",

	// Time and measures (generic news vocabulary coverage).
	"year":    "period",
	"period":  "measure",
	"month":   "period",
	"week":    "period",
	"day":     "period",
	"decade":  "period",
	"century": "period",
	"season":  "period",
	"percent": "measure",
	"million": "measure",
	"billion": "measure",
	"number":  "measure",
	"rate":    "measure",
}

func init() {
	// "state" (polity) and "state" (condition) collide in a flat map; keep
	// the polity sense, which is the one news facets use, and repair the
	// chain for condition-like nouns that pointed at it.
	isaParent["state"] = "region"
	for _, w := range []string{"health", "disease", "poverty", "wealth", "crisis",
		"unemployment", "inflation", "corruption", "violence", "security",
		"freedom", "justice", "peace", "environment", "pollution", "injury",
		"boom", "power"} {
		if isaParent[w] == "state" {
			isaParent[w] = "condition"
		}
	}
	isaParent["condition"] = "abstraction"
	isaParent["disease"] = "condition"
	isaParent["health"] = "condition"
	isaParent["crisis"] = "condition"
	isaParent["recession"] = "crisis"

	// Multi-word collocations WordNet actually carries (stored with
	// underscores in the database files). Coverage is deliberately thin —
	// the paper notes WordNet handles noun phrases poorly.
	isaParent["prime minister"] = "politician"
	isaParent["stock market"] = "market"
	isaParent["climate change"] = "phenomenon"
	isaParent["civil war"] = "war"
	isaParent["world cup"] = "tournament"
	isaParent["real estate"] = "business"
	isaParent["human rights"] = "freedom"
	isaParent["united nations"] = "organization"

	// Category collocations on the hypernym paths, mirroring real
	// WordNet's intermediate synsets ("head of state", "natural disaster",
	// "sporting event"): specific nouns route through them so that
	// hypernym queries surface facet-grade category names.
	isaParent["political leader"] = "leader"
	isaParent["business leader"] = "leader"
	isaParent["military leader"] = "leader"
	isaParent["religious leader"] = "leader"
	for w, p := range map[string]string{
		"politician": "political leader",
		"executive":  "business leader",
		"general":    "military leader",
		"commander":  "military leader",
		"cleric":     "religious leader",
	} {
		isaParent[w] = p
	}
	isaParent["natural disaster"] = "disaster"
	for _, w := range []string{"earthquake", "flood", "tsunami", "wildfire", "drought", "storm", "famine"} {
		isaParent[w] = "natural disaster"
	}
	isaParent["sports event"] = "event"
	isaParent["tournament"] = "sports event"
	isaParent["match"] = "sports event"
	isaParent["race"] = "sports event"
	// Real WordNet places specific company kinds under "company" with the
	// "corporation" synset adjacent; route sector nouns through
	// "corporation" so the category surfaces in hypernym queries.
	isaParent["corporation"] = "organization"
	isaParent["company"] = "corporation"

	// Topical-noun chains to domain categories (all present in real
	// WordNet in some form); these are what make hypernym expansion of
	// ordinary news vocabulary surface facet-grade terms.
	for w, p := range map[string]string{
		"ballot":     "election",
		"runoff":     "election",
		"export":     "trade",
		"import":     "trade",
		"lending":    "banking",
		"deposit":    "banking",
		"tuition":    "education",
		"curriculum": "education",
		"drug":       "medicine",
		"therapy":    "medicine",
		"warming":    "climate change",
		"melody":     "music",
		"movie":      "film",
		"cinema":     "film",
		"broadcast":  "television",
		"stage":      "theater",
		"bombing":    "terrorism",
		"sermon":     "religion",
		"prayer":     "religion",
		"mortgage":   "real estate",
		"housing":    "real estate",
		"wage":       "employment",
		"payroll":    "employment",
		"hiring":     "employment",
		"layoff":     "employment",
	} {
		isaParent[w] = p
	}
	isaParent["film"] = "art"
	isaParent["television"] = "communication"
	isaParent["theater"] = "art"
	isaParent["employment"] = "activity"
	isaParent["mountain"] = "nature"
	isaParent["wildlife"] = "nature"
	isaParent["habitat"] = "wildlife"
	isaParent["species"] = "wildlife"
	isaParent["administration"] = "government"
	isaParent["ministry"] = "government"
	isaParent["presidency"] = "government"
	isaParent["partisan"] = "politician"
	isaParent["statesman"] = "politician"
	isaParent["premier"] = "politician"
}

// IsaLexicon returns a copy of the common-noun hypernym map
// (word → immediate hypernym; roots map to "").
func IsaLexicon() map[string]string {
	out := make(map[string]string, len(isaParent))
	for k, v := range isaParent {
		out[k] = v
	}
	return out
}

// WordNetLexicon returns the lexicon extended with the geographic layer
// real WordNet carries (countries, capitals and major cities, continents
// as instance hyponyms of "country"/"city"/"continent"). This is the
// taxonomy the synthetic WordNet database files are generated from; the
// paper's observation that WordNet covers named entities poorly still
// holds — people, organizations, and events remain absent.
func WordNetLexicon(kb *KB) map[string]string {
	lex := IsaLexicon()
	addIfFree := func(name, parent string) {
		if _, exists := lex[name]; !exists {
			lex[name] = parent
		}
	}
	location, ok := kb.ByName("Location")
	if !ok {
		return lex
	}
	for i := 0; i < kb.Len(); i++ {
		c := kb.Concept(ConceptID(i))
		if c.Class != ClassPlace {
			continue
		}
		// Continents sit directly under Location; countries under a
		// continent; cities under a country.
		if len(c.Parents) == 0 {
			continue
		}
		parent := kb.Concept(c.Parents[0])
		switch {
		case parent.ID == location.ID:
			addIfFree(c.Name, "continent")
		case len(parent.Parents) > 0 && parent.Parents[0] == location.ID:
			addIfFree(c.Name, "country")
		default:
			addIfFree(c.Name, "city")
		}
	}
	return lex
}

// HypernymChain returns the hypernym chain of word (nearest first), not
// including the word itself, following the is-a lexicon. Returns nil when
// the word is not covered.
func HypernymChain(word string) []string {
	var out []string
	cur, ok := isaParent[word]
	if !ok {
		return nil
	}
	for cur != "" && len(out) < 16 {
		out = append(out, cur)
		cur = isaParent[cur]
	}
	return out
}
