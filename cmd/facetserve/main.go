// Command facetserve builds a faceted browsing interface over a generated
// news archive and serves it over HTTP: a server-rendered front end at /
// and a JSON API under /api/ (facets, docs, dates, cross).
//
//	facetserve [-addr :8080] [-docs 600] [-profile SNYT] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	facet "repro"
	"repro/internal/browse"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	docs := flag.Int("docs", 600, "number of documents to generate")
	profile := flag.String("profile", "SNYT", "dataset profile")
	seed := flag.Uint64("seed", 42, "seed")
	topK := flag.Int("topk", 120, "facet terms to extract")
	flag.Parse()

	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := env.GenerateNewsCorpus(*profile, *docs, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := facet.NewSystem(env, facet.Options{TopK: *topK})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range corpus {
		sys.Add(d)
	}
	log.Printf("extracting facets from %d documents...", sys.Len())
	res, err := sys.ExtractFacets()
	if err != nil {
		log.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		log.Fatal(err)
	}
	iface, err := browseInterface(res, h)
	if err != nil {
		log.Fatal(err)
	}
	title := fmt.Sprintf("%s archive — %d stories, %d facet terms", *profile, sys.Len(), len(res.Facets))
	log.Printf("serving %s on %s", title, *addr)
	log.Fatal(http.ListenAndServe(*addr, serve.New(iface, title)))
}

// browseInterface reaches beneath the facade for the internal browse
// engine the HTTP server needs.
func browseInterface(res *facet.Result, h *facet.Hierarchy) (*browse.Interface, error) {
	return res.BrowseEngine(h)
}
