package facet

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/parallel"
)

// This file implements the paper's extension points (Section VII): custom
// term extractors and expansion resources — the "domain-specific
// vocabularies and ontologies (e.g., from the Taxonomy Warehouse)"
// integration — and the evidence-combination hierarchy construction the
// paper points to as future work (Snow, Jurafsky & Ng 2006).

// TermExtractor identifies important terms in a document; plug custom
// implementations in through Options.ExtraExtractors.
type TermExtractor interface {
	Name() string
	Extract(text string) []string
}

// ContextResource returns context terms for an important term; plug
// custom implementations in through Options.ExtraResources.
type ContextResource interface {
	Name() string
	Context(term string) []string
}

// NewGlossaryExtractor builds a term extractor from a controlled
// vocabulary: terms appearing in the glossary are marked important
// (longest match first). Use it to run the pipeline over domain text
// (financial filings, medical literature) with a domain glossary.
func NewGlossaryExtractor(name string, vocabulary []string) (TermExtractor, error) {
	return core.NewGlossaryExtractor(name, vocabulary)
}

// NewGlossaryResource builds an expansion resource from a thesaurus map
// (term → related terms), the Section VII "financial ontologies and
// thesauri" scenario.
func NewGlossaryResource(name string, thesaurus map[string][]string) (ContextResource, error) {
	return core.NewGlossaryResource(name, thesaurus)
}

// HierarchyMethod selects the hierarchy-construction algorithm by
// registry name (see hierarchy.Names for the full set). The historical
// constants below are the names of the three original strategies; any
// registered builder name — e.g. "agglomerative" — is equally valid.
type HierarchyMethod string

const (
	// HierarchySubsumption is the paper's choice (Sanderson & Croft 1999).
	HierarchySubsumption HierarchyMethod = "subsumption"
	// HierarchyEvidence combines subsumption with WordNet-hypernym and
	// Wikipedia-link evidence (the Snow-style improvement the paper
	// anticipates: "newer algorithms may give even better results").
	HierarchyEvidence HierarchyMethod = "evidence"
	// HierarchyTreeMin is the Stoica–Hearst prior-work baseline: WordNet
	// hypernym paths merged and minimized, no co-occurrence signal.
	HierarchyTreeMin HierarchyMethod = "treemin"
)

// BuildHierarchyWith is BuildHierarchy with an explicit construction
// method: any registered hierarchy.Builder name. The empty string
// selects Options.HierarchyBuilder, then "subsumption". Its wall-clock
// cost is recorded as the build_hierarchy stage of Result.StageReport.
func (r *Result) BuildHierarchyWith(method HierarchyMethod) (*Hierarchy, error) {
	return r.BuildHierarchyWithContext(context.Background(), method)
}

// BuildHierarchyWithContext is BuildHierarchyWith with cancellation: the
// sharded O(terms²) parent-selection sweep checks ctx between terms, so a
// caller-imposed deadline aborts hierarchy construction promptly instead
// of completing the full pairwise pass.
func (r *Result) BuildHierarchyWithContext(ctx context.Context, method HierarchyMethod) (*Hierarchy, error) {
	if r.stages != nil {
		defer r.stages.Start("build_hierarchy")()
	}
	name := string(method)
	if name == "" {
		name = r.sys.opts.HierarchyBuilder
	}
	if name == "" {
		name = string(HierarchySubsumption)
	}
	b, ok := hierarchy.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("facet: unknown hierarchy builder %q (registered: %s)",
			name, strings.Join(hierarchy.Names(), ", "))
	}
	terms := r.Terms()
	docTerms := r.assignDocTerms(terms)
	forest, err := b.Build(ctx, terms, docTerms, r.sys.hierarchyBuildConfig())
	if err != nil {
		return nil, err
	}
	return &Hierarchy{forest: forest, docTerms: docTerms}, nil
}

// hierarchyBuildConfig assembles the shared BuildConfig every registered
// builder draws from: the session's threshold and worker knobs plus the
// environment-backed taxonomy wiring (WordNet-hypernym and
// Wikipedia-link evidence sources for the "evidence" builder, hypernym
// chains for "treemin"). Builders ignore the options that do not apply
// to them, so one config serves the whole registry.
func (s *System) hierarchyBuildConfig() hierarchy.BuildConfig {
	env := s.env
	wnEvidence := hierarchy.EvidenceFunc{
		EvidenceName: "wordnet-hypernym",
		Fn: func(parent, child string) float64 {
			lemma, ok := env.wnet.Morphy(child)
			if !ok {
				return 0
			}
			for _, h := range env.wnet.Hypernyms(lemma, 6) {
				if h == parent {
					return 1
				}
			}
			return 0
		},
	}
	wikiEvidence := hierarchy.EvidenceFunc{
		EvidenceName: "wikipedia-link",
		Fn: func(parent, child string) float64 {
			cp, ok := env.wiki.Resolve(child)
			if !ok {
				return 0
			}
			pp, ok := env.wiki.Resolve(parent)
			if !ok {
				return 0
			}
			for _, l := range cp.Links {
				if l.Target == pp.ID {
					return 1
				}
			}
			return 0
		},
	}
	chains := hierarchy.ChainFunc(func(term string) []string {
		lemma, ok := env.wnet.Morphy(term)
		if !ok {
			return nil
		}
		return env.wnet.Hypernyms(lemma, 8)
	})
	return hierarchy.BuildConfig{
		Threshold: s.opts.SubsumptionThreshold,
		Workers:   parallel.Workers(s.opts.Workers),
		Metrics:   s.metrics, // surfaces hierarchy.pairs.* pruning counters; nil disables
		Evidence: hierarchy.EvidenceOptions{
			Sources:   []hierarchy.TaxonomicEvidence{wnEvidence, wikiEvidence},
			Weights:   []float64{0.5, 0.5},
			Threshold: 0.6,
		},
		Chains: chains,
	}
}

// WriteDOT renders the hierarchy as a Graphviz digraph for visualization.
func (h *Hierarchy) WriteDOT(w io.Writer, name string) error {
	return hierarchy.WriteDOT(w, h.forest, name)
}

// WriteJSON serializes the hierarchy (term, df, children) as JSON.
func (h *Hierarchy) WriteJSON(w io.Writer) error {
	return hierarchy.WriteJSON(w, h.forest)
}

// FormatTree renders the hierarchy as an indented text tree.
func (h *Hierarchy) FormatTree() string {
	return hierarchy.FormatTree(h.forest)
}
