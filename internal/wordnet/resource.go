package wordnet

import "strings"

// Resource adapts the database to the pipeline's external-resource
// interface ("WordNet Hypernyms", Section IV-B of the paper): querying a
// term returns its hypernyms up to a fixed depth.
//
// The paper's characterization — "hypernyms are useful and high-precision
// terms, but tend to have low recall, especially when dealing with named
// entities and noun phrases" — is inherent here: lookups only succeed for
// lemmas the database carries.
type Resource struct {
	db    *DB
	depth int
}

// NewResource returns the resource; depth <= 0 defaults to 3 levels.
func NewResource(db *DB, depth int) *Resource {
	if depth <= 0 {
		depth = 3
	}
	return &Resource{db: db, depth: depth}
}

// Name implements the core.Resource convention.
func (r *Resource) Name() string { return "WordNet Hypernyms" }

// uniqueBeginners are the top-ontology synsets ("unique beginners" in
// WordNet terminology). They carry no browsing information, so the
// resource never reports them as context — the standard exclusion in
// systems that consume hypernym chains.
var uniqueBeginners = map[string]bool{
	"entity": true, "abstraction": true, "object": true, "act": true,
	"organism": true, "artifact": true, "substance": true, "group": true,
	"relation": true, "attribute": true, "measure": true,
	"phenomenon": true, "communication": true,
}

// Context returns the hypernyms of the term. The term is first looked up
// verbatim; failing that, morphological normalization (a small "morphy":
// plural stripping) is applied; failing that, nothing is returned.
// Top-ontology synsets are excluded from the output.
func (r *Resource) Context(term string) []string {
	lemma, ok := r.db.Morphy(term)
	if !ok {
		return nil
	}
	hyps := r.db.Hypernyms(lemma, r.depth)
	out := hyps[:0]
	for _, h := range hyps {
		if !uniqueBeginners[h] {
			out = append(out, h)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Morphy resolves a surface form to a lemma present in the database,
// implementing the noun subset of WordNet's morphological rules: exact
// match, then the detachment rules -s → ∅, -ses → -s, -ies → -y,
// -es → -e / ∅, applied to the final word of a phrase.
func (db *DB) Morphy(form string) (string, bool) {
	form = strings.ToLower(strings.TrimSpace(form))
	if db.Contains(form) {
		return form, true
	}
	words := strings.Fields(form)
	if len(words) == 0 {
		return "", false
	}
	last := words[len(words)-1]
	for _, cand := range nounDetachments(last) {
		words[len(words)-1] = cand
		lemma := strings.Join(words, " ")
		if db.Contains(lemma) {
			return lemma, true
		}
	}
	return "", false
}

// nounDetachments returns candidate singulars for a plural-looking noun,
// in WordNet's rule order.
func nounDetachments(w string) []string {
	var out []string
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 3:
		out = append(out, w[:len(w)-3]+"y")
	case strings.HasSuffix(w, "ses") && len(w) > 3:
		out = append(out, w[:len(w)-2])
	case strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "zes") ||
		strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "shes"):
		out = append(out, w[:len(w)-2])
	}
	if strings.HasSuffix(w, "es") && len(w) > 2 {
		out = append(out, w[:len(w)-1]) // -es → -e
	}
	if strings.HasSuffix(w, "s") && len(w) > 1 && !strings.HasSuffix(w, "ss") {
		out = append(out, w[:len(w)-1])
	}
	return out
}
