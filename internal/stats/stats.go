// Package stats implements the statistical machinery of the paper's
// Step 3 (Section IV-C): Dunning's log-likelihood statistic for binomial
// frequency comparison (Dunning 1993), and — as the comparator the paper
// argues against — Pearson's chi-square test, whose assumptions break on
// power-law term frequencies. The ablation experiment (DESIGN.md A1)
// contrasts the two.
package stats

import "math"

// LogL computes log L(p, k, n) = k·log(p) + (n−k)·log(1−p), with the
// standard convention 0·log(0) = 0.
func LogL(p float64, k, n int) float64 {
	var out float64
	if k > 0 {
		if p <= 0 {
			return math.Inf(-1)
		}
		out += float64(k) * math.Log(p)
	}
	if n-k > 0 {
		if p >= 1 {
			return math.Inf(-1)
		}
		out += float64(n-k) * math.Log(1-p)
	}
	return out
}

// LogLikelihood computes the paper's −log λ statistic for a term with
// document frequency df in the original database and dfC in the
// contextualized database, both over n documents:
//
//	−log λ = log L(p1, dfC, n) + log L(p2, df, n)
//	       − log L(p, df, n) − log L(p, dfC, n)
//
// with p1 = dfC/n, p2 = df/n, p = (p1+p2)/2. The value is ≥ 0 and grows
// with the significance of the frequency difference.
func LogLikelihood(df, dfC, n int) float64 {
	if n <= 0 {
		return 0
	}
	p1 := float64(dfC) / float64(n)
	p2 := float64(df) / float64(n)
	p := (p1 + p2) / 2
	v := LogL(p1, dfC, n) + LogL(p2, df, n) - LogL(p, df, n) - LogL(p, dfC, n)
	if v < 0 {
		// Floating-point guard; analytically the statistic is non-negative.
		return 0
	}
	return v
}

// ChiSquare computes Pearson's chi-square statistic for the same 2×2
// contingency setup (term presence/absence in original vs. contextualized
// collections of n documents each). The paper notes this test is
// unreliable for text frequencies because the expected counts are tiny in
// the Zipfian tail; it is provided for the ablation comparison.
func ChiSquare(df, dfC, n int) float64 {
	if n <= 0 {
		return 0
	}
	// Observed: [df, n-df; dfC, n-dfC].
	o := [4]float64{float64(df), float64(n - df), float64(dfC), float64(n - dfC)}
	rowTotals := [2]float64{float64(n), float64(n)}
	colTotals := [2]float64{o[0] + o[2], o[1] + o[3]}
	grand := 2 * float64(n)
	var chi float64
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			e := rowTotals[r] * colTotals[c] / grand
			if e <= 0 {
				continue
			}
			d := o[r*2+c] - e
			chi += d * d / e
		}
	}
	return chi
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
