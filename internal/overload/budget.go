package overload

import (
	"fmt"
	"strconv"
	"time"
)

// BudgetHeader is the request header carrying the caller's remaining
// latency budget. The serve middleware parses it into a context
// deadline; the cluster coordinator re-encodes the REMAINING budget on
// its scattered shard sub-requests, so every hop down the fan-out tree
// works against what is actually left rather than a fresh allowance.
const BudgetHeader = "X-Deadline-Budget"

// MaxBudget bounds an accepted deadline budget. Anything longer is not
// a latency budget, it is a client asking to hold a connection open.
const MaxBudget = 10 * time.Minute

// ParseBudget parses a BudgetHeader value: either a Go duration string
// ("250ms", "1.5s") or a bare non-negative integer meaning
// milliseconds. The result is always in (0, MaxBudget]; zero, negative,
// overflowing, and malformed values are errors (a spent budget is the
// caller's signal to shed locally, not something to forward).
func ParseBudget(raw string) (time.Duration, error) {
	if raw == "" {
		return 0, fmt.Errorf("overload: empty deadline budget")
	}
	var d time.Duration
	if ms, err := strconv.ParseInt(raw, 10, 64); err == nil {
		if ms > int64(MaxBudget/time.Millisecond) {
			return 0, fmt.Errorf("overload: deadline budget %q exceeds %v", raw, MaxBudget)
		}
		d = time.Duration(ms) * time.Millisecond
	} else {
		d, err = time.ParseDuration(raw)
		if err != nil {
			return 0, fmt.Errorf("overload: bad deadline budget %q (want a duration like 250ms or integer milliseconds)", raw)
		}
	}
	if d <= 0 {
		return 0, fmt.Errorf("overload: deadline budget %q is not positive", raw)
	}
	if d > MaxBudget {
		return 0, fmt.Errorf("overload: deadline budget %q exceeds %v", raw, MaxBudget)
	}
	return d, nil
}

// FormatBudget renders a budget in the canonical on-the-wire form
// (integer milliseconds, rounded up so a forwarded budget is never
// encoded as spent while time remains).
func FormatBudget(d time.Duration) string {
	if d > MaxBudget {
		d = MaxBudget
	}
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatInt(int64(ms), 10)
}
