// Package parallel provides the shard-and-merge scheduling primitives
// shared by the batch pipeline (internal/core), hierarchy construction
// (internal/hierarchy), and the live-ingestion bootstrap
// (internal/ingest). The paper's pipeline is embarrassingly parallel per
// document — important-term identification (Fig. 1) and context
// derivation (Fig. 2) have no cross-document dependencies, and the
// comparative analysis (Fig. 3) folds over merged document-frequency
// tables — so one dynamic sharding loop serves every stage: items are
// handed to a bounded worker pool, each worker writes only into its own
// slots or per-worker accumulator, and the caller merges per-worker
// results in worker order, which keeps output independent of scheduling.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n > 0 is taken as-is, anything
// else selects runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(worker, i) for every i in [0, n), sharded dynamically
// across the given number of workers. Worker IDs are in [0, workers),
// and every invocation with a given worker ID runs on that worker's
// goroutine, so per-worker accumulators (scratch maps, DF-delta tables,
// result slices) need no locking. With workers <= 1 the loop runs
// sequentially on the calling goroutine — the byte-for-byte sequential
// path the equivalence guarantee is stated against.
//
// ctx is checked between items on every worker; the first error observed
// aborts the loop and is returned after all workers have stopped.
func For(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
