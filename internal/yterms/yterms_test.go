package yterms

import (
	"strings"
	"testing"

	"repro/internal/remote"
	"repro/internal/textdb"
)

// buildBG creates a background table where "common" words appear in many
// documents and everything else is rare.
func buildBG() *textdb.DFTable {
	c := textdb.NewCorpus()
	for i := 0; i < 50; i++ {
		c.Add(&textdb.Document{Title: "t", Text: "people said the report was a common story about the city"})
	}
	c.Add(&textdb.Document{Title: "t", Text: "chirac attended the summit on global warming in scotland"})
	table := textdb.NewDFTable(c.Dict())
	for i := 0; i < c.Len(); i++ {
		table.AddDoc(c.DocTerms(textdb.DocID(i)))
	}
	return table
}

func TestRareTermsOutrankCommonOnes(t *testing.T) {
	bg := buildBG()
	e := New(bg, 5, nil)
	got := e.Extract("The report said Chirac discussed global warming. People liked the report about the summit.")
	if len(got) == 0 {
		t.Fatal("no terms extracted")
	}
	pos := map[string]int{}
	for i, g := range got {
		pos[g] = i + 1
	}
	if pos["chirac"] == 0 {
		t.Fatalf("rare entity missing: %v", got)
	}
	if p, ok := pos["report"]; ok && p <= pos["chirac"] {
		t.Fatalf("background-common word ranked above rare entity: %v", got)
	}
}

func TestPhrasesExtracted(t *testing.T) {
	bg := buildBG()
	e := New(bg, 8, nil)
	got := e.Extract("Experts discussed global warming at the summit. Global warming dominated.")
	found := false
	for _, g := range got {
		if g == "global warming" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cohesive phrase not extracted: %v", got)
	}
}

func TestTopKHonored(t *testing.T) {
	bg := buildBG()
	e := New(bg, 3, nil)
	got := e.Extract("chirac summit warming scotland city story report people common said")
	if len(got) > 3 {
		t.Fatalf("topK violated: %d terms", len(got))
	}
}

func TestEmptyText(t *testing.T) {
	e := New(buildBG(), 5, nil)
	if got := e.Extract(""); got != nil {
		t.Fatalf("empty text returned %v", got)
	}
	if got := e.Extract("the of and a"); got != nil {
		t.Fatalf("stopword-only text returned %v", got)
	}
}

func TestClockCharged(t *testing.T) {
	clock := remote.NewClock()
	e := New(buildBG(), 5, clock)
	e.Extract("chirac visited scotland")
	e.Extract("another story about paris")
	if clock.Calls("Yahoo") != 2 {
		t.Fatalf("calls = %d", clock.Calls("Yahoo"))
	}
	if clock.Elapsed() != 2*remote.YahooPerDoc {
		t.Fatalf("elapsed = %v", clock.Elapsed())
	}
}

func TestNormalizedOutput(t *testing.T) {
	e := New(buildBG(), 10, nil)
	got := e.Extract("CHIRAC met Warming experts")
	for _, g := range got {
		if g != strings.ToLower(g) {
			t.Fatalf("term %q not normalized", g)
		}
	}
}
