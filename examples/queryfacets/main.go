// Queryfacets: dynamic faceting over search results. The paper notes the
// facet computation is fast enough to run "dynamically over a set of
// lengthy query results" (Section V-D): instead of building facets for
// the whole archive, build them only for the documents matching a query,
// so the navigation adapts to what the user searched for.
package main

import (
	"fmt"
	"log"
	"strings"

	facet "repro"
)

func main() {
	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	archive, err := env.GenerateNewsCorpus("MNYT", 1500, 32)
	if err != nil {
		log.Fatal(err)
	}

	for _, query := range []string{"election", "summit", "champion"} {
		// Poor man's result set: keyword containment. (A deployment would
		// use the index; the point here is facets over an arbitrary doc
		// subset.)
		var results []facet.Document
		for _, d := range archive {
			if strings.Contains(strings.ToLower(d.Title+" "+d.Text), query) {
				results = append(results, d)
			}
		}
		if len(results) < 20 {
			fmt.Printf("query %q: only %d results, skipping faceting\n\n", query, len(results))
			continue
		}
		sys, err := facet.NewSystem(env, facet.Options{TopK: 40})
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range results {
			sys.Add(d)
		}
		res, err := sys.ExtractFacets()
		if err != nil {
			log.Fatal(err)
		}
		h, err := res.BuildHierarchy()
		if err != nil {
			log.Fatal(err)
		}
		b, err := res.Browser(h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %q: %d results — facets for narrowing:\n", query, len(results))
		for i, fc := range b.Children("", facet.Selection{}) {
			if i >= 8 {
				break
			}
			fmt.Printf("  %-26s %4d\n", fc.Term, fc.Count)
		}
		fmt.Println()
	}
}
