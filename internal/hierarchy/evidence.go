package hierarchy

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/parallel"
)

// TaxonomicEvidence scores the hypothesis "parent is-a-broader-term-of
// child" from one knowledge source, in [0, 1]. This is the extension the
// paper points at ("newer algorithms [5] may give even better results",
// citing Snow, Jurafsky & Ng 2006): instead of relying on document
// co-occurrence alone, evidence from heterogeneous sources is combined.
type TaxonomicEvidence interface {
	Name() string
	Score(parent, child string) float64
}

// EvidenceFunc adapts a function to TaxonomicEvidence.
type EvidenceFunc struct {
	EvidenceName string
	Fn           func(parent, child string) float64
}

// Name implements TaxonomicEvidence.
func (e EvidenceFunc) Name() string { return e.EvidenceName }

// Score implements TaxonomicEvidence.
func (e EvidenceFunc) Score(parent, child string) float64 { return e.Fn(parent, child) }

// EvidenceConfig parameterizes BuildWithEvidence.
type EvidenceConfig struct {
	// SubsumptionWeight scales the co-occurrence evidence P(x|y); the
	// remaining sources contribute with their own weights. 0 selects 1.0.
	SubsumptionWeight float64
	// Weights per evidence source, aligned with Sources; nil gives every
	// source weight 1.
	Weights []float64
	Sources []TaxonomicEvidence
	// Threshold is the minimum combined score for attaching a child to a
	// parent; 0 selects 0.8 (comparable to plain subsumption's θ).
	Threshold float64
	// MinDF as in SubsumptionConfig.
	MinDF int
	// Workers as in SubsumptionConfig: shards the pairwise evidence
	// scoring, <= 1 runs sequentially, output is identical either way.
	// Sources must be safe for concurrent use when Workers > 1.
	Workers int
}

// BuildWithEvidence builds a forest like BuildSubsumption but chooses each
// term's parent by the maximum combined evidence score. A candidate must
// still satisfy P(y|x) < 1 (directionality) and reach the threshold.
func BuildWithEvidence(terms []string, docTerms [][]string, cfg EvidenceConfig) (*Forest, error) {
	return BuildWithEvidenceContext(context.Background(), terms, docTerms, cfg)
}

// BuildWithEvidenceContext is BuildWithEvidence with cancellation: ctx is
// checked between terms of the sharded pairwise evidence sweep, and a
// canceled build returns ctx's error instead of a partial forest.
func BuildWithEvidenceContext(ctx context.Context, terms []string, docTerms [][]string, cfg EvidenceConfig) (*Forest, error) {
	if cfg.SubsumptionWeight == 0 {
		cfg.SubsumptionWeight = 1.0
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.8
	}
	if cfg.MinDF == 0 {
		cfg.MinDF = 2
	}
	if cfg.Weights != nil && len(cfg.Weights) != len(cfg.Sources) {
		return nil, fmt.Errorf("hierarchy: %d weights for %d sources", len(cfg.Weights), len(cfg.Sources))
	}
	weight := func(i int) float64 {
		if cfg.Weights == nil {
			return 1
		}
		return cfg.Weights[i]
	}
	totalWeight := cfg.SubsumptionWeight
	for i := range cfg.Sources {
		totalWeight += weight(i)
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("hierarchy: non-positive total evidence weight")
	}

	idx := make(map[string]int, len(terms))
	uniq := make([]string, 0, len(terms))
	for _, t := range terms {
		if _, dup := idx[t]; !dup {
			idx[t] = len(uniq)
			uniq = append(uniq, t)
		}
	}
	sets := make([]*bitset.Set, len(uniq))
	for i := range sets {
		sets[i] = bitset.New(len(docTerms))
	}
	for d, ts := range docTerms {
		for _, t := range ts {
			if i, ok := idx[t]; ok {
				sets[i].Set(d)
			}
		}
	}
	df := make([]int, len(uniq))
	for i, s := range sets {
		df[i] = s.Count()
	}
	var alive []int
	for i := range uniq {
		if df[i] >= cfg.MinDF {
			alive = append(alive, i)
		}
	}
	sort.Slice(alive, func(a, b int) bool { return uniq[alive[a]] < uniq[alive[b]] })

	nodes := make(map[int]*Node, len(alive))
	for _, i := range alive {
		nodes[i] = &Node{Term: uniq[i], DF: df[i]}
	}
	// As in BuildSubsumption, every term's best parent is computed
	// independently, so the pairwise evidence combination shards across
	// workers into per-term slots merged deterministically afterwards.
	parents := make([]int, len(alive))
	err := parallel.For(ctx, len(alive), cfg.Workers, func(_, yi int) {
		y := alive[yi]
		bestScore := 0.0
		bestIdx := -1
		for _, x := range alive {
			if x == y {
				continue
			}
			co := sets[x].AndCount(sets[y])
			pyx := float64(co) / float64(df[x])
			if pyx >= 1 {
				continue
			}
			score := cfg.SubsumptionWeight * float64(co) / float64(df[y])
			for i, src := range cfg.Sources {
				score += weight(i) * clamp01(src.Score(uniq[x], uniq[y]))
			}
			score /= totalWeight
			if score > bestScore || (score == bestScore && bestIdx >= 0 && uniq[x] < uniq[bestIdx]) {
				bestScore = score
				bestIdx = x
			}
		}
		parents[yi] = -1
		if bestIdx >= 0 && bestScore >= cfg.Threshold {
			parents[yi] = bestIdx
		}
	})
	if err != nil {
		return nil, err
	}
	parentOf := map[int]int{}
	for yi, y := range alive {
		if parents[yi] >= 0 {
			parentOf[y] = parents[yi]
		}
	}
	// Cycle guard as in BuildSubsumption.
	for _, y := range alive {
		seen := map[int]bool{y: true}
		cur, ok := parentOf[y]
		for ok {
			if seen[cur] {
				delete(parentOf, y)
				break
			}
			seen[cur] = true
			cur, ok = parentOf[cur]
		}
	}
	forest := &Forest{index: map[string]*Node{}}
	for _, i := range alive {
		forest.index[uniq[i]] = nodes[i]
	}
	for _, y := range alive {
		if p, ok := parentOf[y]; ok {
			nodes[y].Parent = nodes[p]
			nodes[p].Children = append(nodes[p].Children, nodes[y])
		} else {
			forest.Roots = append(forest.Roots, nodes[y])
		}
	}
	less := func(a, b *Node) bool {
		if a.DF != b.DF {
			return a.DF > b.DF
		}
		return a.Term < b.Term
	}
	forest.Walk(func(n *Node, _ int) {
		sort.Slice(n.Children, func(i, j int) bool { return less(n.Children[i], n.Children[j]) })
	})
	sort.Slice(forest.Roots, func(i, j int) bool { return less(forest.Roots[i], forest.Roots[j]) })
	return forest, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
