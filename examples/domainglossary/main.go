// Domainglossary: the paper's Section VII scenario — running the same
// pipeline over domain literature with a domain-specific controlled
// vocabulary for term identification and a domain thesaurus for
// expansion ("when browsing literature for financial topics, we can use
// one of the available glossaries to identify financial terms ... then
// expand the identified terms using one of the available financial
// ontologies and thesauri").
package main

import (
	"fmt"
	"log"

	facet "repro"
)

// A miniature financial newsletter corpus. Real deployments load their
// own documents; the point here is the custom extractor/resource wiring.
var filings = []string{
	"The hedge fund increased its margin exposure while derivatives desks hedged interest rate risk.",
	"A pension fund shifted assets into index funds after reviewing its actuarial liabilities.",
	"The central bank warned about margin lending and the growth of derivatives markets.",
	"Private equity firms courted the pension fund with leveraged buyout proposals.",
	"The hedge fund unwound derivatives positions as volatility spiked.",
	"Regulators proposed new capital requirements for banks engaged in margin lending.",
	"The sovereign wealth fund bought treasury bonds and municipal bonds for its fixed income book.",
	"An index fund provider cut fees, pressuring active managers and hedge funds.",
	"The investment bank underwrote corporate bonds while advising on a leveraged buyout.",
	"Treasury bonds rallied as the pension fund rebalanced away from equities.",
	"The hedge fund reported losses on corporate bonds purchased on margin.",
	"Municipal bonds issued by the city funded infrastructure amid credit rating concerns.",
}

func main() {
	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	glossary, err := facet.NewGlossaryExtractor("Finance Glossary", []string{
		"hedge fund", "pension fund", "index fund", "sovereign wealth fund",
		"derivatives", "margin", "leveraged buyout", "private equity",
		"treasury bonds", "municipal bonds", "corporate bonds",
		"investment bank", "central bank",
	})
	if err != nil {
		log.Fatal(err)
	}
	thesaurus, err := facet.NewGlossaryResource("Finance Thesaurus", map[string][]string{
		"hedge fund":            {"alternative investments", "asset management", "institutional investors"},
		"pension fund":          {"institutional investors", "asset management", "retirement finance"},
		"index fund":            {"asset management", "passive investing"},
		"sovereign wealth fund": {"institutional investors", "public finance"},
		"derivatives":           {"financial instruments", "risk management"},
		"margin":                {"leverage", "risk management"},
		"leveraged buyout":      {"corporate finance", "private markets"},
		"private equity":        {"private markets", "alternative investments"},
		"treasury bonds":        {"fixed income", "government debt"},
		"municipal bonds":       {"fixed income", "public finance"},
		"corporate bonds":       {"fixed income", "corporate finance"},
		"investment bank":       {"banking", "corporate finance"},
		"central bank":          {"banking", "monetary policy"},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := facet.NewSystem(env, facet.Options{
		TopK: 30,
		// Only domain tools: the news-oriented extractors/resources stay out.
		Extractors:      []string{"NE"},
		Resources:       []string{"WordNet Hypernyms"},
		ExtraExtractors: []facet.TermExtractor{glossary},
		ExtraResources:  []facet.ContextResource{thesaurus},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, text := range filings {
		sys.Add(facet.Document{Title: fmt.Sprintf("filing %d", i+1), Text: text})
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Financial facet terms discovered from the glossary pipeline:")
	for _, f := range res.Facets {
		fmt.Printf("  %-26s df=%d -> %d\n", f.Term, f.DF, f.DFC)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		log.Fatal(err)
	}
	b, err := res.Browser(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBrowse the filings by financial facet:")
	for _, fc := range b.Children("", facet.Selection{}) {
		fmt.Printf("  %-26s %d filings\n", fc.Term, fc.Count)
	}
}
