package snapshot

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/browse"
	"repro/internal/hierarchy"
	"repro/internal/textdb"
)

// tinyInterface builds the smallest meaningful engine for fuzz seeds.
func tinyInterface() (*browse.Interface, error) {
	corpus := textdb.NewCorpus()
	corpus.Add(&textdb.Document{Title: "t", Source: "s", Date: time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC), Text: "alpha beta"})
	corpus.Add(&textdb.Document{Title: "t", Source: "s", Date: time.Date(2008, 1, 2, 0, 0, 0, 0, time.UTC), Text: "beta gamma"})
	docTerms := [][]string{{"a"}, {"a", "b"}}
	forest, err := hierarchy.BuildSubsumption([]string{"a", "b"}, docTerms, hierarchy.SubsumptionConfig{MinDF: 1})
	if err != nil {
		return nil, err
	}
	return browse.Build(corpus, forest, docTerms)
}

// FuzzSnapshotDecode throws arbitrary bytes at the decoder. Properties:
// Decode never panics, and any input it accepts re-encodes canonically —
// Encode(Decode(x)) must itself decode to the same snapshot. CI runs
// this as a 10s smoke on every push; longer local runs explore deeper.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with a pristine encoding plus targeted mutations of it, so the
	// fuzzer starts at the format's interesting surface instead of random
	// magic-check rejections.
	iface, err := tinyInterface()
	if err != nil {
		f.Fatal(err)
	}
	valid, err := Encode(Capture(iface, Meta{Epoch: 2, Profile: "SEED", Seed: 9}, []FacetStat{{Term: "a", DF: 1, Score: 0.5}}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("FSNP"))
	f.Add(valid[:len(valid)/2])
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 24 {
		mutated[24] ^= 0xFF
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		peeked, peekErr := PeekEpoch(data) // must never panic either
		s, err := Decode(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		// Anything the full decoder accepts, the header-only epoch peek
		// must also accept — and agree on the epoch.
		if peekErr != nil {
			t.Fatalf("Decode accepted input but PeekEpoch rejected it: %v", peekErr)
		}
		if peeked != s.Meta.Epoch {
			t.Fatalf("PeekEpoch = %d, Decode says epoch %d", peeked, s.Meta.Epoch)
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		re2, err := Encode(s2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
