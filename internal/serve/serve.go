// Package serve exposes a faceted browsing interface over HTTP: a
// versioned JSON API under /api/v1/ (facet counts, documents, date
// histogram, cross-tabulation, ingest, metrics) plus a minimal
// server-rendered HTML front end with clickable facet links — the
// Flamenco-style deployment surface for the extracted hierarchies.
//
// Every route is instrumented through obsv.HTTPMetrics (request counts,
// status classes, latency histograms per route) and the registry is
// served at GET /api/v1/metrics. The API surface is /api/v1/ only: the
// unversioned /api/ aliases that shipped during the v1 migration carried
// Deprecation + successor Link headers for five releases and have been
// removed; unversioned paths now answer with the unified 404 envelope.
//
// Every non-2xx API response is the unified envelope
//
//	{"error": {"code": "...", "message": "..."}}
//
// written by a single WriteError path.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/browse"
	"repro/internal/ingest"
	"repro/internal/obsv"
	"repro/internal/overload"
	"repro/internal/textdb"
)

// Server handles HTTP requests over a built browsing interface. The
// interface is held behind an atomic pointer so a live-ingestion epoch
// can republish it mid-flight: every request loads the pointer exactly
// once and serves that complete, immutable epoch — concurrent swaps can
// never produce a torn read mixing counts from two hierarchies.
type Server struct {
	iface     atomic.Pointer[browse.Interface]
	mux       *http.ServeMux
	title     string
	metrics   *obsv.Registry
	httpm     *obsv.HTTPMetrics
	accessLog io.Writer

	// gov, when set (WithOverload), applies per-class adaptive admission
	// control to every non-exempt route; nil serves unthrottled.
	gov *overload.Governor

	// readiness checks gate /api/v1/readyz; registered before traffic
	// starts (AddReadiness), each is typically a resilience wrapper's
	// breaker-backed Ready method.
	readiness []readinessCheck

	// apiRoutes maps each registered API path (relative, e.g. "facets")
	// to its allowed methods, so the fallback handler can distinguish a
	// wrong method (405 + Allow) from an unknown route (404). Mutated only
	// during registration, before traffic starts.
	apiRoutes map[string][]string
}

type readinessCheck struct {
	name  string
	check func() error
}

// Option configures a Server at construction.
type Option func(*Server)

// WithMetrics records into an externally owned registry, so the HTTP
// layer, the ingester, and the segment store can share one snapshot.
// Without it the server allocates a private registry.
func WithMetrics(reg *obsv.Registry) Option {
	return func(s *Server) { s.metrics = reg }
}

// WithAccessLog writes one structured (JSON) line per request to w.
func WithAccessLog(w io.Writer) Option {
	return func(s *Server) { s.accessLog = w }
}

// New builds the server over an initial interface.
func New(iface *browse.Interface, title string, opts ...Option) *Server {
	s := &Server{title: title}
	s.iface.Store(iface)
	for _, opt := range opts {
		opt(s)
	}
	if s.metrics == nil {
		s.metrics = obsv.NewRegistry()
	}
	s.httpm = obsv.NewHTTPMetrics(s.metrics)
	if s.accessLog != nil {
		s.httpm.SetAccessLog(s.accessLog)
	}
	s.mux = http.NewServeMux()
	s.apiRoutes = map[string][]string{}
	// Method-less catch-alls under both API prefixes: they lose to every
	// registered method+path pattern (more specific wins), so they see
	// exactly the requests no real route claims — unknown paths and wrong
	// methods on known paths — and answer with the unified error envelope
	// instead of the mux's plain-text defaults.
	fallback := s.httpm.Wrap("api_unmatched", s.instrument("api_unmatched", http.HandlerFunc(s.handleAPIFallback)))
	s.mux.Handle("/api/", fallback)
	s.mux.Handle("/api/v1/", fallback)
	s.Handle(http.MethodGet, "facets", "facets", s.handleFacets)
	s.Handle(http.MethodGet, "docs", "docs", s.handleDocs)
	s.Handle(http.MethodGet, "dates", "dates", s.handleDates)
	s.Handle(http.MethodGet, "cross", "cross", s.handleCross)
	s.Handle(http.MethodGet, "metrics", "metrics", s.handleMetrics)
	s.Handle(http.MethodGet, "healthz", "healthz", s.handleHealthz)
	s.Handle(http.MethodGet, "readyz", "readyz", s.handleReadyz)
	// Method-less like the API fallbacks (a "GET /" pattern would conflict
	// with them under the mux's precedence rules); handleIndex enforces GET.
	s.mux.Handle("/", s.httpm.Wrap("index", s.instrument("index", http.HandlerFunc(s.handleIndex))))
	return s
}

// AddReadiness registers a named readiness check consulted by GET
// /api/v1/readyz — typically a resilient wrapper's Ready method, so the
// probe reflects circuit-breaker state: the endpoint answers 503 while
// any dependency's breaker is open (or probing half-open) and recovers
// the moment its probes close it. Like EnableIngest, registration must
// happen before the server starts handling traffic.
func (s *Server) AddReadiness(name string, check func() error) {
	s.readiness = append(s.readiness, readinessCheck{name: name, check: check})
}

// HealthzResponse is the GET /api/v1/healthz payload.
type HealthzResponse struct {
	Status string `json:"status"`
}

// handleHealthz is the liveness probe: the process is up and serving;
// it deliberately checks nothing else.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, HealthzResponse{Status: "ok"})
}

// ReadyzResponse is the 200 GET /api/v1/readyz payload; failures use
// the unified error envelope with code "not_ready" instead.
type ReadyzResponse struct {
	Status string            `json:"status"`
	Checks map[string]string `json:"checks,omitempty"`
}

// handleReadyz is the readiness probe: 200 while every registered
// dependency check passes, 503 (unified envelope, code not_ready) with
// the failing checks named otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := make(map[string]string, len(s.readiness))
	var failing []string
	for _, rc := range s.readiness {
		if err := rc.check(); err != nil {
			checks[rc.name] = err.Error()
			failing = append(failing, rc.name+": "+err.Error())
		} else {
			checks[rc.name] = "ok"
		}
	}
	if len(failing) > 0 {
		WriteError(w, http.StatusServiceUnavailable, ErrCodeNotReady,
			fmt.Errorf("not ready: %s", strings.Join(failing, "; ")))
		return
	}
	WriteJSON(w, ReadyzResponse{Status: "ready", Checks: checks})
}

// Handle registers one API route at its canonical versioned path
// /api/v1/<path>. (The unversioned /api/<path> aliases from the v1
// migration are gone; they now fall through to the 404 envelope.) It is
// exported so sibling subsystems (internal/cluster's shard and leader
// endpoints) can mount additional routes on the same server, inheriting
// the fallback 404/405 envelope and per-route metrics; like
// EnableIngest, registration must happen before traffic starts.
func (s *Server) Handle(method, path, route string, h http.HandlerFunc) {
	wrapped := s.httpm.Wrap(route, s.instrument(route, h))
	s.mux.Handle(method+" /api/v1/"+path, wrapped)
	s.apiRoutes[path] = append(s.apiRoutes[path], method)
}

// handleAPIFallback answers every /api/ request no registered route
// claims. A known versioned path hit with the wrong method gets 405 with
// an Allow header; anything else — including the removed unversioned
// /api/<path> aliases — gets 404. Both use the unified envelope — before
// this handler existed, these cases leaked net/http's plain-text "404
// page not found" / "Method Not Allowed" bodies, the one place the API
// broke its own error contract.
func (s *Server) handleAPIFallback(w http.ResponseWriter, r *http.Request) {
	if path, versioned := strings.CutPrefix(strings.TrimPrefix(r.URL.Path, "/api/"), "v1/"); versioned {
		if methods, ok := s.apiRoutes[path]; ok {
			allow := append([]string(nil), methods...)
			sort.Strings(allow)
			w.Header().Set("Allow", strings.Join(allow, ", "))
			WriteError(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed,
				fmt.Errorf("method %s not allowed on %s (allowed: %s)", r.Method, r.URL.Path, strings.Join(allow, ", ")))
			return
		}
	}
	WriteError(w, http.StatusNotFound, ErrCodeNotFound,
		fmt.Errorf("unknown API route %s", r.URL.Path))
}

// Publish atomically swaps the served browsing interface; in-flight
// requests finish on the epoch they started with. It is the OnPublish
// hook a live Ingester calls after every rebuild.
func (s *Server) Publish(iface *browse.Interface) {
	s.iface.Store(iface)
}

// current returns the interface snapshot a request should serve.
func (s *Server) current() *browse.Interface {
	return s.iface.Load()
}

// Metrics returns the server's registry so other subsystems (ingester,
// segment store) can record into the same /api/v1/metrics snapshot.
func (s *Server) Metrics() *obsv.Registry { return s.metrics }

// SetAccessLog starts (w != nil) or stops (w == nil) the structured
// access log; safe while serving traffic.
func (s *Server) SetAccessLog(w io.Writer) { s.httpm.SetAccessLog(w) }

// EnableIngest registers the live-ingestion endpoints — POST
// /api/v1/ingest (accept documents), GET /api/v1/ingest/stats
// (subsystem health), GET /api/v1/ingest/deadletter (documents whose
// analysis failed permanently), and POST /api/v1/ingest/retry
// (re-analyze the dead-letter queue) — and exposes the ingester's
// gauges through the server's metrics registry. It must be called
// before the server starts handling traffic.
func (s *Server) EnableIngest(ing *ingest.Ingester) {
	ing.RegisterMetrics(s.metrics)
	s.Handle(http.MethodPost, "ingest", "ingest", func(w http.ResponseWriter, r *http.Request) {
		s.handleIngest(w, r, ing)
	})
	s.Handle(http.MethodGet, "ingest/stats", "ingest_stats", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, ing.Stats())
	})
	s.Handle(http.MethodGet, "ingest/deadletter", "ingest_deadletter", func(w http.ResponseWriter, r *http.Request) {
		dls := ing.DeadLetters()
		WriteJSON(w, DeadLetterResponse{Total: len(dls), DeadLetters: dls})
	})
	s.Handle(http.MethodPost, "ingest/retry", "ingest_retry", func(w http.ResponseWriter, r *http.Request) {
		admitted, err := ing.RetryDeadLetters(r.Context())
		if err != nil {
			WriteError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
				fmt.Errorf("retried %d documents: %w", admitted, err))
			return
		}
		WriteJSON(w, RetryResponse{Admitted: admitted, Remaining: len(ing.DeadLetters())})
	})
}

// DeadLetterResponse is the GET /api/v1/ingest/deadletter payload.
type DeadLetterResponse struct {
	Total       int                    `json:"total"`
	DeadLetters []ingest.DeadLetterDoc `json:"dead_letters"`
}

// RetryResponse is the POST /api/v1/ingest/retry payload.
type RetryResponse struct {
	// Admitted counts documents whose re-analysis succeeded and are now
	// ingested; Remaining counts documents that failed again and wait in
	// the queue.
	Admitted  int `json:"admitted"`
	Remaining int `json:"remaining"`
}

// EnablePprof mounts the standard runtime profiling handlers under
// /debug/pprof/ (facetserve gates this behind -pprof: profiling
// endpoints leak implementation detail and cost CPU, so production
// deployments opt in explicitly).
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// parseDate accepts RFC 3339 or YYYY-MM-DD; empty means the zero time.
// It is the single date parser for both selection query parameters and
// ingest payloads.
func parseDate(raw string) (time.Time, error) {
	if raw == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, raw); err == nil {
		return t, nil
	}
	t, err := time.Parse("2006-01-02", raw)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad date %q (want RFC3339 or YYYY-MM-DD)", raw)
	}
	return t, nil
}

// ParseSelection parses the shared selection query parameters: terms
// (comma separated), q, from, to (RFC 3339 dates or YYYY-MM-DD). The
// cluster coordinator reuses it so single-node and scatter-gather
// serving validate requests identically.
func ParseSelection(r *http.Request) (browse.Selection, error) {
	sel := browse.Selection{Query: r.URL.Query().Get("q")}
	if raw := r.URL.Query().Get("terms"); raw != "" {
		for _, t := range strings.Split(raw, ",") {
			t = strings.TrimSpace(t)
			if t != "" {
				sel.Terms = append(sel.Terms, t)
			}
		}
	}
	var err error
	if sel.From, err = parseDate(r.URL.Query().Get("from")); err != nil {
		return sel, fmt.Errorf("from: %w", err)
	}
	if sel.To, err = parseDate(r.URL.Query().Get("to")); err != nil {
		return sel, fmt.Errorf("to: %w", err)
	}
	return sel, nil
}

// WriteJSON writes v as the API's canonical two-space-indented JSON;
// every 2xx body — single-node or cluster — goes through it, which is
// what makes coordinator responses byte-comparable to single-node ones.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Stable machine-readable error codes of the unified envelope.
const (
	ErrCodeBadRequest       = "bad_request"
	ErrCodeUnavailable      = "unavailable"
	ErrCodeNotReady         = "not_ready"
	ErrCodeNotFound         = "not_found"
	ErrCodeMethodNotAllowed = "method_not_allowed"
)

// ErrorDetail is the payload of the unified error envelope.
type ErrorDetail struct {
	// Code is a stable machine-readable identifier (bad_request,
	// unavailable); Message is human-readable detail.
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the JSON body of every non-2xx API response:
// {"error":{"code":"...","message":"..."}}.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// WriteError is the single exit path for API errors; every handler's
// failure funnels through it so clients see one envelope shape.
func WriteError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ErrorResponse{Error: ErrorDetail{Code: code, Message: err.Error()}})
}

func badRequest(w http.ResponseWriter, err error) {
	WriteError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
}

// QueryBoundedInt validates an optional positive bounded integer query
// parameter; strconv.Atoi alone would admit negative, zero, and
// overflowing values that misbehave downstream. It is shared by every
// handler with a count-like parameter (docs and facets limits).
func QueryBoundedInt(r *http.Request, name string, def, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 1 || v > max {
		return 0, fmt.Errorf("bad %s %q (want 1..%d)", name, raw, max)
	}
	return v, nil
}

// FacetsResponse is the /api/v1/facets payload.
type FacetsResponse struct {
	Parent string              `json:"parent"`
	Total  int                 `json:"total"`
	Facets []browse.FacetCount `json:"facets"`
}

func (s *Server) handleFacets(w http.ResponseWriter, r *http.Request) {
	sel, err := ParseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	limit, err := QueryBoundedInt(r, "limit", 100, 1000)
	if err != nil {
		badRequest(w, err)
		return
	}
	iface := s.current()
	parent := r.URL.Query().Get("parent")
	facets := iface.Children(parent, sel)
	if len(facets) > limit {
		facets = facets[:limit]
	}
	WriteJSON(w, FacetsResponse{
		Parent: parent,
		Total:  iface.MatchCount(sel),
		Facets: facets,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, s.metrics.Snapshot())
}

// DocSummary is one document in the /api/v1/docs payload.
type DocSummary struct {
	ID      int    `json:"id"`
	Title   string `json:"title"`
	Source  string `json:"source"`
	Date    string `json:"date"`
	Snippet string `json:"snippet"`
}

// DocsResponse is the /api/v1/docs payload.
type DocsResponse struct {
	Total int          `json:"total"`
	Docs  []DocSummary `json:"docs"`
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	sel, err := ParseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	limit, err := QueryBoundedInt(r, "limit", 20, 500)
	if err != nil {
		badRequest(w, err)
		return
	}
	iface := s.current()
	ids := iface.Docs(sel)
	resp := DocsResponse{Total: len(ids)}
	for i, id := range ids {
		if i >= limit {
			break
		}
		doc := iface.Corpus().Doc(id)
		resp.Docs = append(resp.Docs, DocSummary{
			ID:      int(id),
			Title:   doc.Title,
			Source:  doc.Source,
			Date:    doc.Date.Format("2006-01-02"),
			Snippet: textdb.Snippet(doc, sel.Query, 24),
		})
	}
	WriteJSON(w, resp)
}

// DateBucket is one histogram bucket in the /api/v1/dates payload.
type DateBucket struct {
	Bucket string `json:"bucket"`
	Count  int    `json:"count"`
}

func (s *Server) handleDates(w http.ResponseWriter, r *http.Request) {
	sel, err := ParseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	gran := r.URL.Query().Get("granularity")
	if gran == "" {
		gran = "day"
	}
	hist, err := s.current().DateHistogram(sel, gran)
	if err != nil {
		badRequest(w, err)
		return
	}
	out := make([]DateBucket, len(hist))
	for i, h := range hist {
		out[i] = DateBucket{Bucket: h.Bucket.Format("2006-01-02"), Count: h.Count}
	}
	WriteJSON(w, out)
}

func (s *Server) handleCross(w http.ResponseWriter, r *http.Request) {
	sel, err := ParseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		badRequest(w, fmt.Errorf("need a and b facet parameters"))
		return
	}
	ct, err := s.current().Cross(a, b, sel)
	if err != nil {
		badRequest(w, err)
		return
	}
	WriteJSON(w, ct)
}

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 70em; }
.facets { float: left; width: 20em; }
.docs { margin-left: 22em; }
.facet a { text-decoration: none; }
.count { color: #888; }
.sel { background: #eef; padding: 0.2em 0.5em; margin-right: 0.4em; }
</style></head><body>
<h1>{{.Title}}</h1>
<form method="get">
<input type="text" name="q" value="{{.Query}}" placeholder="keyword search">
<input type="hidden" name="terms" value="{{.TermsRaw}}">
<button>Search</button>
</form>
<p>
{{range .Selected}}<span class="sel">{{.Name}} <a href="{{.RemoveURL}}">×</a></span>{{end}}
{{.Total}} documents match.
</p>
<div class="facets"><h2>Facets</h2>
{{range .Facets}}<div class="facet"><a href="{{.URL}}">{{.Name}}</a> <span class="count">({{.Count}})</span></div>{{end}}
</div>
<div class="docs"><h2>Documents</h2>
{{range .Docs}}<p><b>{{.Title}}</b><br><small>{{.Source}} — {{.Date}}</small><br>{{.Snippet}}</p>{{end}}
</div>
</body></html>`))

type indexSelected struct {
	Name      string
	RemoveURL string
}

type indexFacet struct {
	Name  string
	Count int
	URL   string
}

type indexData struct {
	Title    string
	Query    string
	TermsRaw string
	Total    int
	Selected []indexSelected
	Facets   []indexFacet
	Docs     []DocSummary
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "Method Not Allowed", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	sel, err := ParseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	iface := s.current()
	data := indexData{
		Title:    s.title,
		Query:    sel.Query,
		TermsRaw: strings.Join(sel.Terms, ","),
		Total:    iface.MatchCount(sel),
	}
	urlFor := func(terms []string) string {
		q := "/?terms=" + strings.Join(terms, ",")
		if sel.Query != "" {
			q += "&q=" + sel.Query
		}
		return q
	}
	for i, t := range sel.Terms {
		rest := append(append([]string{}, sel.Terms[:i]...), sel.Terms[i+1:]...)
		data.Selected = append(data.Selected, indexSelected{Name: t, RemoveURL: urlFor(rest)})
	}
	// Facet links: roots plus children of selected terms.
	appendFacets := func(parent string) {
		for _, fc := range iface.Children(parent, sel) {
			data.Facets = append(data.Facets, indexFacet{
				Name:  fc.Term,
				Count: fc.Count,
				URL:   urlFor(append(append([]string{}, sel.Terms...), fc.Term)),
			})
		}
	}
	appendFacets("")
	for _, t := range sel.Terms {
		appendFacets(t)
	}
	if len(data.Facets) > 40 {
		data.Facets = data.Facets[:40]
	}
	for i, id := range iface.Docs(sel) {
		if i >= 15 {
			break
		}
		doc := iface.Corpus().Doc(id)
		data.Docs = append(data.Docs, DocSummary{
			ID: int(id), Title: doc.Title, Source: doc.Source,
			Date:    doc.Date.Format("2006-01-02"),
			Snippet: textdb.Snippet(doc, sel.Query, 24),
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTemplate.Execute(w, data)
}

// IngestDoc is one document in the POST /api/v1/ingest payload. Date
// accepts RFC 3339 or YYYY-MM-DD and defaults to the server's current
// time when empty.
type IngestDoc struct {
	Title  string `json:"title"`
	Source string `json:"source"`
	Date   string `json:"date"`
	Text   string `json:"text"`
}

// IngestRequest is the POST /api/v1/ingest payload.
type IngestRequest struct {
	Documents []IngestDoc `json:"documents"`
}

// IngestResponse is the POST /api/v1/ingest reply.
type IngestResponse struct {
	Accepted int `json:"accepted"`
}

const maxIngestBody = 64 << 20 // bytes; one request cannot exhaust memory

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, ing *ingest.Ingester) {
	var req IngestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil {
		badRequest(w, fmt.Errorf("bad ingest payload: %w", err))
		return
	}
	if len(req.Documents) == 0 {
		badRequest(w, fmt.Errorf("no documents in payload"))
		return
	}
	docs := make([]*textdb.Document, len(req.Documents))
	for i, d := range req.Documents {
		if strings.TrimSpace(d.Text) == "" {
			badRequest(w, fmt.Errorf("document %d has empty text", i))
			return
		}
		date := time.Now().UTC()
		if d.Date != "" {
			var err error
			if date, err = parseDate(d.Date); err != nil {
				badRequest(w, fmt.Errorf("document %d: %w", i, err))
				return
			}
		}
		docs[i] = &textdb.Document{Title: d.Title, Source: d.Source, Date: date, Text: d.Text}
	}
	// Submission is bounded: the fast path fails over a saturated queue
	// immediately; a request carrying a deadline budget may instead wait
	// for space until that budget is spent (SubmitContext). Either way a
	// full queue surfaces as a 429 with Retry-After — producers are told
	// to slow down rather than piling up in blocked handlers.
	for i, doc := range docs {
		err := ing.Submit(doc)
		if errors.Is(err, ingest.ErrQueueFull) {
			if _, ok := r.Context().Deadline(); ok {
				err = ing.SubmitContext(r.Context(), doc)
			}
		}
		if err != nil {
			wrapped := fmt.Errorf("accepted %d of %d documents: %w", i, len(docs), err)
			if errors.Is(err, ingest.ErrQueueFull) || errors.Is(err, context.DeadlineExceeded) {
				WriteShed(w, http.StatusTooManyRequests, s.ingestRetryAfter(), wrapped)
				return
			}
			WriteError(w, http.StatusServiceUnavailable, ErrCodeUnavailable, wrapped)
			return
		}
	}
	WriteJSON(w, IngestResponse{Accepted: len(docs)})
}

// ingestRetryAfter picks the Retry-After for a saturated intake queue:
// the write class's drain estimate under admission control, one second
// otherwise.
func (s *Server) ingestRetryAfter() int {
	if s.gov != nil {
		return s.gov.RetryAfterSeconds(overload.ClassWrite)
	}
	return 1
}
