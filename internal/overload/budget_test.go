package overload

import (
	"strings"
	"testing"
	"time"
)

func TestParseBudget(t *testing.T) {
	cases := []struct {
		raw  string
		want time.Duration
		ok   bool
	}{
		{"250ms", 250 * time.Millisecond, true},
		{"1.5s", 1500 * time.Millisecond, true},
		{"2m", 2 * time.Minute, true},
		{"250", 250 * time.Millisecond, true}, // bare integer = milliseconds
		{"1", time.Millisecond, true},
		{"600000", 10 * time.Minute, true}, // exactly MaxBudget
		{"", 0, false},
		{"0", 0, false},
		{"-5", 0, false},
		{"0s", 0, false},
		{"-1s", 0, false},
		{"11m", 0, false},    // beyond MaxBudget
		{"600001", 0, false}, // beyond MaxBudget in milliseconds
		{"999999999999999999999", 0, false},
		{"banana", 0, false},
		{"1h1x", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseBudget(tc.raw)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseBudget(%q) = %v, %v; want %v", tc.raw, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseBudget(%q) = %v, want error", tc.raw, got)
		}
	}
}

func TestFormatBudgetRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{
		time.Millisecond, 250 * time.Millisecond, time.Second,
		1500 * time.Millisecond, MaxBudget,
		// Sub-millisecond budgets round UP on the wire: a forwarded
		// budget must never be encoded as already spent.
		100 * time.Microsecond,
	} {
		got, err := ParseBudget(FormatBudget(d))
		if err != nil {
			t.Fatalf("round trip %v: %v", d, err)
		}
		want := d.Round(time.Millisecond)
		if d%time.Millisecond != 0 {
			want = d.Truncate(time.Millisecond) + time.Millisecond
		}
		if want < time.Millisecond {
			want = time.Millisecond
		}
		if got != want {
			t.Fatalf("round trip %v = %v, want %v", d, got, want)
		}
	}
}

// FuzzParseBudget pins the parser's safety contract: it never panics,
// every accepted value is in (0, MaxBudget], and the canonical encoding
// of an accepted value is itself accepted with millisecond-identical
// meaning.
func FuzzParseBudget(f *testing.F) {
	for _, seed := range []string{"250ms", "1.5s", "250", "0", "-1s", "", "banana",
		"600000", "600001", "10m", "99999h", "1ns", "+1", " 5 ", "0x10"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		d, err := ParseBudget(raw)
		if err != nil {
			return
		}
		if d <= 0 || d > MaxBudget {
			t.Fatalf("ParseBudget(%q) = %v outside (0, %v]", raw, d, MaxBudget)
		}
		enc := FormatBudget(d)
		if strings.ContainsAny(enc, " \t\r\n") {
			t.Fatalf("FormatBudget(%v) = %q contains whitespace", d, enc)
		}
		d2, err := ParseBudget(enc)
		if err != nil {
			t.Fatalf("re-parse of canonical %q (from %q): %v", enc, raw, err)
		}
		// Canonical form is millisecond-granular, rounded up.
		want := d.Truncate(time.Millisecond)
		if d%time.Millisecond != 0 {
			want += time.Millisecond
		}
		if d2 != want {
			t.Fatalf("canonical round trip %q -> %v -> %q -> %v, want %v", raw, d, enc, d2, want)
		}
	})
}
