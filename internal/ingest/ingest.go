// Package ingest is the live ingestion subsystem: it accepts documents at
// runtime, runs them through the paper's Fig. 1–3 pipeline incrementally,
// and republishes the faceted browsing interface without downtime.
//
// The batch pipeline (internal/core driven by the facet facade) processes
// a frozen corpus once; a deployed news archive instead grows
// continuously, and its facet hierarchy must follow. The subsystem is
// organized as three cooperating pieces:
//
//  1. Intake: a bounded queue feeds a worker pool that shards
//     per-document important-term extraction (Fig. 1) and context
//     expansion (Fig. 2) across GOMAXPROCS workers. Context lookups go
//     through a bounded LRU cache, so the recurring entities of a news
//     stream skip re-expansion — the streaming analogue of the paper's
//     Section V-D precomputation. Each accepted document's term sets and
//     document-frequency deltas are merged into incrementally maintained
//     DF tables for the original and contextualized databases.
//  2. Epoch rebuild: when enough documents accumulate (EpochDocs) or the
//     served interface grows stale (MaxStaleness), the scheduler re-runs
//     candidate selection (Shift_f, Shift_r, −log λ via
//     core.AnalyzeTables) over the incremental tables, rebuilds the
//     subsumption hierarchy, and assembles a fresh browse.Interface over
//     an immutable corpus snapshot. The heavy work runs off-lock; intake
//     continues during a rebuild.
//  3. Publication: the rebuilt interface is swapped atomically
//     (atomic.Pointer); readers always see a complete, internally
//     consistent epoch — never a torn mix of old and new state. Accepted
//     documents are durably persisted through textdb.Store.Append at
//     every epoch, so a restarted server warm-starts from disk.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/browse"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/obsv"
	"repro/internal/parallel"
	"repro/internal/textdb"
)

// Sentinel errors returned by Submit.
var (
	ErrClosed    = errors.New("ingest: ingester closed")
	ErrQueueFull = errors.New("ingest: intake queue full")
)

// Config assembles an Ingester. Extractors and Resources must be safe for
// concurrent use (the built-in substrates are read-only after
// construction; core.IdentifyImportant already shards them the same way).
type Config struct {
	Extractors []core.Extractor
	Resources  []core.Resource

	// Fallback, when set, is a last-resort context resource (normally the
	// corpus-only distributional model, facet.CoreFallback) consulted for
	// an important term only when EVERY configured resource failed its
	// lookup. Without it, any resource failure dead-letters the document
	// (never half-ingest); with it, a document caught in a TOTAL resource
	// outage is admitted with distributional context instead — complete
	// under the degraded-mode definition — while a partial outage still
	// dead-letters (a partial expansion would skew the DF tables).
	Fallback core.Resource

	// TopK bounds the number of facet terms per rebuild (0 = 200, the
	// paper's working value).
	TopK int
	// SubsumptionThreshold is θ for hierarchy construction (0 = 0.8).
	SubsumptionThreshold float64
	// HierarchyBuilder selects the hierarchy strategy by registry name
	// (hierarchy.Names); "" = "subsumption". Taxonomy-backed builders
	// ("evidence", "treemin") run without external sources here — the
	// live pipeline has no environment wiring — so co-occurrence
	// builders ("subsumption", "agglomerative") are the useful choices.
	HierarchyBuilder string
	// MaxImportantPerDoc caps important terms per document (0 = no cap).
	MaxImportantPerDoc int

	// Workers sizes the intake pool (0 = GOMAXPROCS).
	Workers int
	// QueueSize bounds the intake queue (0 = 1024). A full queue pushes
	// back on producers: Submit fails fast, SubmitWait blocks.
	QueueSize int

	// EpochDocs triggers a rebuild epoch once this many documents have
	// accumulated since the last publication (0 = 64).
	EpochDocs int
	// MaxStaleness additionally triggers a rebuild whenever unpublished
	// documents have been waiting this long (0 = disabled).
	MaxStaleness time.Duration

	// CacheSize bounds the resource LRU cache in entries (0 = 4096).
	CacheSize int

	// DeadLetterSize bounds the dead-letter queue holding documents whose
	// analysis failed permanently — an extractor or resource (after the
	// resilience layer's retries) returned an error (0 = 256). When full,
	// the oldest entry is dropped and counted. Dead-lettered documents are
	// NOT ingested; RetryDeadLetters re-analyzes them, so a recovered
	// dependency lets them in with complete term sets rather than
	// admitting partial analyses.
	DeadLetterSize int

	// Store, when set, durably persists accepted documents: one segment
	// per epoch via Store.Append. The ingester is then warm-startable
	// from disk (Bootstrap with Store.LoadAll's documents).
	Store *textdb.Store

	// OnPublish, when set, is invoked with every newly published
	// interface (after the internal swap); the HTTP server registers its
	// own atomic swap here.
	OnPublish func(*browse.Interface)

	// Metrics, when set, receives the subsystem's gauges (queue depth,
	// cache hit/miss, docs ingested/published) and epoch timing
	// histograms. The HTTP server additionally registers the same gauges
	// via RegisterMetrics when it enables ingestion.
	Metrics *obsv.Registry

	// Logf, when set, receives diagnostic messages (epoch failures).
	Logf func(format string, args ...any)
}

// Ingester is a running live-ingestion pipeline.
type Ingester struct {
	cfg   Config
	cache *lruCache
	queue chan *textdb.Document

	// Fallible views of the configured dependencies, precomputed once so
	// the per-document hot path skips the interface-upgrade assertions.
	extractors []core.ExtractorErr
	resources  []core.ResourceErr
	fallback   core.ResourceErr // nil unless Config.Fallback set

	// Dead-letter queue: documents whose analysis failed permanently.
	dlqMu      sync.Mutex
	dlq        []DeadLetterDoc
	dlqDropped atomic.Int64

	current        atomic.Pointer[browse.Interface]
	publishedTerms atomic.Pointer[[]string]

	// mu guards the incremental pipeline state: the growing corpus, the
	// per-document extraction results, and the DF delta tables. Workers
	// do extraction and expansion lock-free and only merge under mu.
	mu          sync.Mutex
	corpus      *textdb.Corpus
	important   [][]string       // important[d]: Fig. 1 output for doc d
	votes       []map[string]int // votes[d]: context-term corroboration counts
	dfD         *textdb.DFTable  // document frequencies over D
	dfC         *textdb.DFTable  // document frequencies over C(D)
	ctxTerms    map[textdb.TermID]bool
	pending     []*textdb.Document // accepted but not yet persisted
	unpublished int                // accepted but not yet in the served interface
	// Reusable expansion state for admit (guarded by mu like the tables
	// it feeds): documents arrive one at a time under the lock, so one
	// scratch map and one row buffer serve every admission allocation-free
	// at steady state.
	expandScratch map[textdb.TermID]bool
	expandBuf     []textdb.TermID

	// Lifecycle. submitMu serializes Submit against Close so the queue is
	// never written after it is closed.
	submitMu sync.RWMutex
	closed   bool
	started  bool
	kick     chan struct{}
	stop     chan struct{}
	wg       sync.WaitGroup // intake workers
	schedWG  sync.WaitGroup // epoch scheduler

	// Monotonic counters, readable without mu.
	docsIngested      atomic.Int64
	docsPublished     atomic.Int64
	epochs            atomic.Int64
	lastEpochDocs     atomic.Int64
	lastEpochMillis   atomic.Int64
	facetTerms        atomic.Int64
	persistedDocs     atomic.Int64
	persistedSegments atomic.Int64
	analysisFailures  atomic.Int64
	queueRejections   atomic.Int64
	fallbackLookups   atomic.Int64
}

// New validates the configuration and returns an idle ingester. Call
// Bootstrap to seed and publish the first epoch, then Start to launch the
// intake workers and the epoch scheduler.
func New(cfg Config) (*Ingester, error) {
	if len(cfg.Extractors) == 0 {
		return nil, fmt.Errorf("ingest: no extractors configured")
	}
	if len(cfg.Resources) == 0 {
		return nil, fmt.Errorf("ingest: no resources configured")
	}
	if cfg.HierarchyBuilder != "" {
		if _, ok := hierarchy.Lookup(cfg.HierarchyBuilder); !ok {
			return nil, fmt.Errorf("ingest: unknown hierarchy builder %q", cfg.HierarchyBuilder)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.EpochDocs <= 0 {
		cfg.EpochDocs = 64
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4096
	}
	if cfg.DeadLetterSize <= 0 {
		cfg.DeadLetterSize = 256
	}
	corpus := textdb.NewCorpus()
	ing := &Ingester{
		cfg:           cfg,
		cache:         newLRUCache(cfg.CacheSize),
		queue:         make(chan *textdb.Document, cfg.QueueSize),
		corpus:        corpus,
		dfD:           textdb.NewDFTable(corpus.Dict()),
		dfC:           textdb.NewDFTable(corpus.Dict()),
		ctxTerms:      map[textdb.TermID]bool{},
		expandScratch: map[textdb.TermID]bool{},
		kick:          make(chan struct{}, 1),
		stop:          make(chan struct{}),
	}
	ing.extractors = make([]core.ExtractorErr, len(cfg.Extractors))
	for i, ex := range cfg.Extractors {
		ing.extractors[i] = core.AsExtractorErr(ex)
	}
	ing.resources = make([]core.ResourceErr, len(cfg.Resources))
	for i, r := range cfg.Resources {
		ing.resources[i] = core.AsResourceErr(r)
	}
	if cfg.Fallback != nil {
		ing.fallback = core.AsResourceErr(cfg.Fallback)
	}
	if cfg.Store != nil {
		ing.persistedDocs.Store(int64(cfg.Store.Docs()))
		ing.persistedSegments.Store(int64(cfg.Store.Segments()))
	}
	if cfg.Metrics != nil {
		ing.RegisterMetrics(cfg.Metrics)
	}
	return ing, nil
}

// RegisterMetrics exposes the subsystem's live state through reg as
// ingest.* gauges. Registering the same ingester twice (or into two
// registries) is harmless — gauges read the authoritative atomic
// counters at snapshot time. When no registry was configured at
// construction, reg also becomes the sink for epoch timing histograms;
// like EnableIngest, this must happen before traffic starts.
func (ing *Ingester) RegisterMetrics(reg *obsv.Registry) {
	if ing.cfg.Metrics == nil {
		ing.cfg.Metrics = reg
	}
	reg.GaugeFunc("ingest.queue_depth", func() int64 { return int64(len(ing.queue)) })
	reg.GaugeFunc("ingest.docs_ingested", ing.docsIngested.Load)
	reg.GaugeFunc("ingest.docs_published", ing.docsPublished.Load)
	reg.GaugeFunc("ingest.epochs", ing.epochs.Load)
	reg.GaugeFunc("ingest.last_epoch_docs", ing.lastEpochDocs.Load)
	reg.GaugeFunc("ingest.last_epoch_millis", ing.lastEpochMillis.Load)
	reg.GaugeFunc("ingest.facet_terms", ing.facetTerms.Load)
	reg.GaugeFunc("ingest.cache_hits", func() int64 { h, _ := ing.cache.Counters(); return h })
	reg.GaugeFunc("ingest.cache_misses", func() int64 { _, m := ing.cache.Counters(); return m })
	reg.GaugeFunc("ingest.cache_entries", func() int64 { return int64(ing.cache.Len()) })
	reg.GaugeFunc("ingest.persisted_docs", ing.persistedDocs.Load)
	reg.GaugeFunc("ingest.persisted_segments", ing.persistedSegments.Load)
	reg.GaugeFunc("ingest.dead_letters", func() int64 {
		ing.dlqMu.Lock()
		defer ing.dlqMu.Unlock()
		return int64(len(ing.dlq))
	})
	reg.GaugeFunc("ingest.dead_letter_dropped", ing.dlqDropped.Load)
	reg.GaugeFunc("ingest.analysis_failures", ing.analysisFailures.Load)
	reg.GaugeFunc("ingest.queue_rejections", ing.queueRejections.Load)
	reg.GaugeFunc("ingest.fallback_lookups", ing.fallbackLookups.Load)
}

// analysis is the lock-free part of processing one document.
type analysis struct {
	important []string
	ctx       []string
	votes     map[string]int
}

// analyze runs Fig. 1 (important-term identification, the union of all
// extractors, first-extractor-first) and Fig. 2 (context expansion
// through the LRU cache) for one document. No locks are held; this is the
// CPU-bound work the worker pool shards.
//
// Any dependency failure — an extractor, or a resource lookup that the
// resilience layer gave up on — fails the whole analysis: a document is
// either ingested with its complete term sets or dead-lettered and
// retried later, never half-expanded (a partial expansion would silently
// skew the DF tables against the paper's Fig. 2 semantics).
func (ing *Ingester) analyze(ctx context.Context, doc *textdb.Document) (analysis, error) {
	text := doc.Title + ". " + doc.Text
	seen := map[string]bool{}
	var terms []string
	for _, ex := range ing.extractors {
		extracted, err := ex.ExtractErr(ctx, text)
		if err != nil {
			return analysis{}, fmt.Errorf("extractor %s: %w", ex.Name(), err)
		}
		for _, t := range extracted {
			if t == "" || seen[t] {
				continue
			}
			seen[t] = true
			terms = append(terms, t)
		}
	}
	if max := ing.cfg.MaxImportantPerDoc; max > 0 && len(terms) > max {
		terms = terms[:max]
	}
	a := analysis{important: terms, votes: map[string]int{}}
	seenCtx := map[string]bool{}
	for _, t := range terms {
		seenTerm := map[string]bool{}
		merge := func(lookedUp []string) {
			for _, c := range lookedUp {
				if c == "" {
					continue
				}
				if !seenTerm[c] { // one vote per (important term, context term)
					seenTerm[c] = true
					a.votes[c]++
				}
				if !seenCtx[c] {
					seenCtx[c] = true
					a.ctx = append(a.ctx, c)
				}
			}
		}
		failed := 0
		var firstErr error
		for _, r := range ing.resources {
			lookedUp, err := ing.cache.LookupErr(ctx, r, t)
			if err != nil {
				err = fmt.Errorf("resource %s(%q): %w", r.Name(), t, err)
				if ing.fallback == nil {
					return analysis{}, err
				}
				// With a fallback configured, keep trying the remaining
				// resources: only a TOTAL failure for this term is
				// rescuable, and we need to know which case this is.
				failed++
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			merge(lookedUp)
		}
		if failed > 0 {
			if failed < len(ing.resources) {
				// Partial outage: some resource answered, so admitting now
				// would half-expand the document. Dead-letter and retry.
				return analysis{}, firstErr
			}
			lookedUp, err := ing.cache.LookupErr(ctx, ing.fallback, t)
			if err != nil {
				return analysis{}, fmt.Errorf("fallback %s(%q): %w", ing.fallback.Name(), t, err)
			}
			ing.fallbackLookups.Add(1)
			merge(lookedUp)
		}
	}
	return a, nil
}

// process analyzes one document and either admits it into the pipeline
// or routes it to the dead-letter queue. persist marks the document for
// durable Append at the next epoch.
func (ing *Ingester) process(doc *textdb.Document, persist bool, attempts int) {
	a, err := ing.analyze(context.Background(), doc)
	if err != nil {
		ing.deadLetter(doc, attempts+1, err)
		return
	}
	ing.admit(doc, a, persist)
}

// DeadLetterDoc is one permanently-failed document awaiting retry.
type DeadLetterDoc struct {
	// Doc is the rejected document, untouched — a retry re-runs the full
	// analysis.
	Doc *textdb.Document `json:"doc"`
	// Attempts counts failed analysis attempts (initial + retries).
	Attempts int `json:"attempts"`
	// Err is the text of the last analysis error.
	Err string `json:"err"`
}

// deadLetter appends one failed document to the bounded dead-letter
// queue, dropping (and counting) the oldest entry when full.
func (ing *Ingester) deadLetter(doc *textdb.Document, attempts int, err error) {
	ing.analysisFailures.Add(1)
	if ing.cfg.Logf != nil {
		ing.cfg.Logf("ingest: dead-lettering document %q (attempt %d): %v", doc.Title, attempts, err)
	}
	ing.dlqMu.Lock()
	defer ing.dlqMu.Unlock()
	ing.dlq = append(ing.dlq, DeadLetterDoc{Doc: doc, Attempts: attempts, Err: err.Error()})
	if over := len(ing.dlq) - ing.cfg.DeadLetterSize; over > 0 {
		ing.dlq = append([]DeadLetterDoc(nil), ing.dlq[over:]...)
		ing.dlqDropped.Add(int64(over))
	}
}

// DeadLetters returns a snapshot of the dead-letter queue, oldest first.
func (ing *Ingester) DeadLetters() []DeadLetterDoc {
	ing.dlqMu.Lock()
	defer ing.dlqMu.Unlock()
	return append([]DeadLetterDoc(nil), ing.dlq...)
}

// RetryDeadLetters drains the dead-letter queue and re-analyzes every
// document synchronously: recovered dependencies let documents in with
// complete term sets; documents that fail again return to the queue with
// their attempt counts bumped. It returns how many documents were
// admitted. Safe to call while intake is running; returns ErrClosed
// after Close.
func (ing *Ingester) RetryDeadLetters(ctx context.Context) (int, error) {
	ing.submitMu.RLock()
	closed := ing.closed
	ing.submitMu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	ing.dlqMu.Lock()
	batch := ing.dlq
	ing.dlq = nil
	ing.dlqMu.Unlock()

	admitted := 0
	for i, dl := range batch {
		if err := ctx.Err(); err != nil {
			// Put the unprocessed tail back, preserving order.
			for _, rest := range batch[i:] {
				ing.requeueDeadLetter(rest)
			}
			return admitted, err
		}
		a, err := ing.analyze(ctx, dl.Doc)
		if err != nil {
			ing.deadLetter(dl.Doc, dl.Attempts+1, err)
			continue
		}
		ing.admit(dl.Doc, a, true)
		admitted++
	}
	return admitted, nil
}

// requeueDeadLetter restores an entry untouched (no failure counted).
func (ing *Ingester) requeueDeadLetter(dl DeadLetterDoc) {
	ing.dlqMu.Lock()
	defer ing.dlqMu.Unlock()
	ing.dlq = append(ing.dlq, dl)
	if over := len(ing.dlq) - ing.cfg.DeadLetterSize; over > 0 {
		ing.dlq = append([]DeadLetterDoc(nil), ing.dlq[over:]...)
		ing.dlqDropped.Add(int64(over))
	}
}

// admit merges one analyzed document into the incremental pipeline state:
// the corpus, the Fig. 1/2 result rows, and the DF delta tables for D and
// C(D). persist marks the document for durable Append at the next epoch
// (false for documents replayed from the store at warm-start).
func (ing *Ingester) admit(doc *textdb.Document, a analysis, persist bool) {
	ing.mu.Lock()
	id := ing.corpus.Add(doc)
	orig := ing.corpus.DocTerms(id)
	ing.dfD.AddDoc(orig)
	ing.expandBuf = core.ExpandDocTermsAppend(ing.expandBuf[:0], ing.corpus.Dict(), orig, a.ctx, ing.expandScratch, ing.ctxTerms)
	ing.dfC.AddDoc(ing.expandBuf)
	ing.important = append(ing.important, a.important)
	ing.votes = append(ing.votes, a.votes)
	if persist && ing.cfg.Store != nil {
		ing.pending = append(ing.pending, doc)
	}
	ing.unpublished++
	due := ing.unpublished >= ing.cfg.EpochDocs
	ing.mu.Unlock()

	ing.docsIngested.Add(1)
	if due {
		select {
		case ing.kick <- struct{}{}:
		default:
		}
	}
}

// Bootstrap seeds the ingester with an initial document set — sharding
// the Fig. 1/2 analysis across the worker count — and synchronously runs
// the first epoch so Current returns a complete interface before any
// traffic is served. With persist set (and a Store configured) the
// documents are durably appended as the first segment; pass persist=false
// when replaying documents already loaded from the store. Bootstrap must
// be called before Start.
func (ing *Ingester) Bootstrap(docs []*textdb.Document, persist bool) error {
	if ing.started {
		return fmt.Errorf("ingest: bootstrap after start")
	}
	analyses := make([]analysis, len(docs))
	errs := make([]error, len(docs))
	parallel.For(context.Background(), len(docs), ing.cfg.Workers, func(_, i int) {
		analyses[i], errs[i] = ing.analyze(context.Background(), docs[i])
	})
	// Sequential admission keeps document IDs aligned with input order
	// (and with segment order on the warm-start path). Documents whose
	// analysis failed are dead-lettered, not admitted; RetryDeadLetters
	// brings them in once their dependency recovers.
	for i, doc := range docs {
		if errs[i] != nil {
			ing.deadLetter(doc, 1, errs[i])
			continue
		}
		ing.admit(doc, analyses[i], persist)
	}
	return ing.runEpoch()
}

// SetOnPublish installs the publication hook after construction — the
// usual wiring order builds the Ingester (and bootstraps it) before the
// HTTP server that consumes its swaps exists. It must be called before
// Start; the hook then fires on every subsequent epoch.
func (ing *Ingester) SetOnPublish(fn func(*browse.Interface)) {
	ing.cfg.OnPublish = fn
}

// Start launches the intake worker pool and the epoch scheduler.
func (ing *Ingester) Start() {
	if ing.started {
		return
	}
	ing.started = true
	for w := 0; w < ing.cfg.Workers; w++ {
		ing.wg.Add(1)
		go func() {
			defer ing.wg.Done()
			for doc := range ing.queue {
				ing.process(doc, true, 0)
			}
		}()
	}
	ing.schedWG.Add(1)
	go ing.schedule()
}

func (ing *Ingester) schedule() {
	defer ing.schedWG.Done()
	var tick <-chan time.Time
	if ing.cfg.MaxStaleness > 0 {
		t := time.NewTicker(ing.cfg.MaxStaleness)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ing.stop:
			return
		case <-ing.kick:
		case <-tick:
		}
		ing.mu.Lock()
		due := ing.unpublished
		ing.mu.Unlock()
		if due == 0 {
			continue
		}
		if err := ing.runEpoch(); err != nil && ing.cfg.Logf != nil {
			ing.cfg.Logf("ingest: epoch rebuild failed: %v", err)
		}
	}
}

// Submit enqueues one document without blocking; it fails fast with
// ErrQueueFull when the bounded intake queue is saturated (backpressure)
// and ErrClosed after Close.
func (ing *Ingester) Submit(doc *textdb.Document) error {
	ing.submitMu.RLock()
	defer ing.submitMu.RUnlock()
	if ing.closed {
		return ErrClosed
	}
	select {
	case ing.queue <- doc:
		return nil
	default:
		ing.queueRejections.Add(1)
		return ErrQueueFull
	}
}

// SubmitContext enqueues one document, blocking while the queue is full
// until space frees up or ctx is done — the natural backpressure mode for
// an HTTP intake handler. Submit is the context-free fast-fail variant.
func (ing *Ingester) SubmitContext(ctx context.Context, doc *textdb.Document) error {
	ing.submitMu.RLock()
	defer ing.submitMu.RUnlock()
	if ing.closed {
		return ErrClosed
	}
	select {
	case ing.queue <- doc:
		return nil
	case <-ctx.Done():
		// The caller's budget expired while the queue was saturated —
		// the same backpressure signal as a fail-fast rejection.
		ing.queueRejections.Add(1)
		return ctx.Err()
	}
}

// SubmitWait is a backward-compatible alias for SubmitContext.
func (ing *Ingester) SubmitWait(ctx context.Context, doc *textdb.Document) error {
	return ing.SubmitContext(ctx, doc)
}

// Current returns the most recently published browsing interface. The
// pointer swap is atomic: every caller sees a complete epoch.
func (ing *Ingester) Current() *browse.Interface {
	return ing.current.Load()
}

// FacetTerms returns the facet terms selected by the served epoch, most
// significant first (the Step-3 ranking before hierarchy assembly, which
// may prune terms with too little document support).
func (ing *Ingester) FacetTerms() []string {
	if p := ing.publishedTerms.Load(); p != nil {
		return *p
	}
	return nil
}

// Close gracefully drains the subsystem: it stops accepting documents,
// waits for the workers to finish every queued document, stops the
// scheduler, and runs one final epoch so all accepted intake is both
// published and durably persisted before exit. If ctx expires mid-drain
// the final rebuild is skipped, but pending documents are still persisted
// so no accepted intake is lost.
func (ing *Ingester) Close(ctx context.Context) error {
	ing.submitMu.Lock()
	if ing.closed {
		ing.submitMu.Unlock()
		return nil
	}
	ing.closed = true
	if ing.started {
		close(ing.queue)
	}
	ing.submitMu.Unlock()

	ing.wg.Wait() // drain queued documents
	close(ing.stop)
	ing.schedWG.Wait()

	ing.mu.Lock()
	due := ing.unpublished > 0 || len(ing.pending) > 0
	ing.mu.Unlock()
	if !due {
		return nil
	}
	if ctx.Err() != nil {
		return ing.persistPending()
	}
	return ing.runEpoch()
}
