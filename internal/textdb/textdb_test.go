package textdb

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("war")
	b := d.Intern("peace")
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if d.Intern("war") != a {
		t.Fatal("re-interning changed the ID")
	}
	if d.Lookup("war") != a || d.Lookup("absent") != NoTerm {
		t.Fatal("lookup broken")
	}
	if d.String(a) != "war" {
		t.Fatal("String broken")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDictionarySortedIDs(t *testing.T) {
	d := NewDictionary()
	for _, w := range []string{"zebra", "apple", "mango"} {
		d.Intern(w)
	}
	var got []string
	for _, id := range d.SortedIDs() {
		got = append(got, d.String(id))
	}
	want := []string{"apple", "mango", "zebra"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestExtractTermsWordsAndPhrases(t *testing.T) {
	terms := ExtractTerms("Jacques Chirac attended the G8 summit.")
	set := map[string]bool{}
	for _, term := range terms {
		set[term] = true
	}
	for _, want := range []string{"jacques", "chirac", "jacques chirac", "g8 summit", "summit"} {
		if !set[want] {
			t.Errorf("missing term %q in %v", want, terms)
		}
	}
	// Phrases must not start or end with a stopword.
	for term := range set {
		words := strings.Split(term, " ")
		if len(words) > 1 {
			if isStop(words[0]) || isStop(words[len(words)-1]) {
				t.Errorf("phrase %q has stopword boundary", term)
			}
		}
	}
}

func isStop(w string) bool {
	return w == "the" || w == "a" || w == "of"
}

func TestExtractTermsNoCrossSentencePhrases(t *testing.T) {
	terms := ExtractTerms("He visited Paris. London was next.")
	for _, term := range terms {
		if term == "paris london" {
			t.Fatal("phrase crossed sentence boundary")
		}
	}
}

func newTestCorpus(texts ...string) *Corpus {
	c := NewCorpus()
	for i, text := range texts {
		c.Add(&Document{Title: "doc", Source: "test", Text: text})
		_ = i
	}
	return c
}

func TestCorpusBasics(t *testing.T) {
	c := newTestCorpus("war in iraq", "peace talks in geneva")
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Doc(0).ID != 0 || c.Doc(1).ID != 1 {
		t.Fatal("IDs not assigned densely")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDocTermsDeduped(t *testing.T) {
	c := newTestCorpus("war war war peace")
	terms := c.DocTerms(0)
	seen := map[TermID]bool{}
	for _, id := range terms {
		if seen[id] {
			t.Fatalf("duplicate term id %d", id)
		}
		seen[id] = true
	}
	// Cached result is stable.
	if &c.DocTerms(0)[0] != &terms[0] {
		t.Fatal("DocTerms not cached")
	}
}

func TestDFTableCounts(t *testing.T) {
	c := newTestCorpus("war in iraq", "war ends", "peace treaty")
	table := NewDFTable(c.Dict())
	for i := 0; i < c.Len(); i++ {
		table.AddDoc(c.DocTerms(DocID(i)))
	}
	warID := c.Dict().Lookup("war")
	if table.DF(warID) != 2 {
		t.Fatalf("DF(war) = %d, want 2", table.DF(warID))
	}
	if table.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", table.NumDocs())
	}
	if table.DF(NoTerm) != 0 || table.DF(TermID(99999)) != 0 {
		t.Fatal("unknown terms must have DF 0")
	}
}

func TestDFTableMergeMatchesSingleTable(t *testing.T) {
	c := newTestCorpus(
		"war in iraq", "war ends", "peace treaty",
		"markets rally", "war peace markets", "treaty signed",
	)
	// One table over all documents...
	whole := NewDFTable(c.Dict())
	for i := 0; i < c.Len(); i++ {
		whole.AddDoc(c.DocTerms(DocID(i)))
	}
	// ...must equal per-shard delta tables merged together, regardless of
	// shard boundaries.
	for _, cut := range []int{0, 2, 4, 6} {
		merged := NewDFTable(c.Dict())
		left, right := NewDFTable(c.Dict()), NewDFTable(c.Dict())
		for i := 0; i < c.Len(); i++ {
			if i < cut {
				left.AddDoc(c.DocTerms(DocID(i)))
			} else {
				right.AddDoc(c.DocTerms(DocID(i)))
			}
		}
		merged.Merge(left)
		merged.Merge(right)
		if merged.NumDocs() != whole.NumDocs() {
			t.Fatalf("cut %d: NumDocs = %d, want %d", cut, merged.NumDocs(), whole.NumDocs())
		}
		for id := 0; id < c.Dict().Len(); id++ {
			if merged.DF(TermID(id)) != whole.DF(TermID(id)) {
				t.Fatalf("cut %d: DF(%q) = %d, want %d",
					cut, c.Dict().String(TermID(id)), merged.DF(TermID(id)), whole.DF(TermID(id)))
			}
		}
	}
	// Merging an empty or nil table is a no-op.
	before := whole.NumDocs()
	whole.Merge(NewDFTable(c.Dict()))
	whole.Merge(nil)
	if whole.NumDocs() != before {
		t.Fatal("empty merge changed the table")
	}
}

func TestRanksAndBins(t *testing.T) {
	d := NewDictionary()
	table := NewDFTable(d)
	// a appears in 3 docs, b in 2, c in 1.
	a, b, c := d.Intern("a"), d.Intern("b"), d.Intern("c")
	table.AddDoc([]TermID{a, b, c})
	table.AddDoc([]TermID{a, b})
	table.AddDoc([]TermID{a})
	ranks := table.Ranks()
	if ranks.Rank(a) != 1 || ranks.Rank(b) != 2 || ranks.Rank(c) != 3 {
		t.Fatalf("ranks = %d %d %d", ranks.Rank(a), ranks.Rank(b), ranks.Rank(c))
	}
	unseen := d.Intern("zzz")
	if ranks.Rank(unseen) != 4 {
		t.Fatalf("unseen rank = %d, want maxRank+1 = 4", ranks.Rank(unseen))
	}
	if ranks.MaxRank() != 3 {
		t.Fatalf("MaxRank = %d", ranks.MaxRank())
	}
}

func TestRankTiesDeterministic(t *testing.T) {
	d := NewDictionary()
	table := NewDFTable(d)
	x, y := d.Intern("zulu"), d.Intern("alpha")
	table.AddDoc([]TermID{x, y})
	ranks := table.Ranks()
	// Equal df: tie broken alphabetically, "alpha" before "zulu".
	if ranks.Rank(y) != 1 || ranks.Rank(x) != 2 {
		t.Fatalf("tie-break wrong: alpha=%d zulu=%d", ranks.Rank(y), ranks.Rank(x))
	}
}

func TestBinFunction(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for rank, want := range cases {
		if got := Bin(rank); got != want {
			t.Errorf("Bin(%d) = %d, want %d", rank, got, want)
		}
	}
}

func TestTopTerms(t *testing.T) {
	d := NewDictionary()
	table := NewDFTable(d)
	a, b, c := d.Intern("aa"), d.Intern("bb"), d.Intern("cc")
	table.AddDoc([]TermID{a, b, c})
	table.AddDoc([]TermID{a, b})
	table.AddDoc([]TermID{a})
	top := table.TopTerms(2, 1)
	if len(top) != 2 || top[0] != a || top[1] != b {
		t.Fatalf("TopTerms = %v", top)
	}
	if got := table.TopTerms(10, 2); len(got) != 2 {
		t.Fatalf("minDF filter failed: %v", got)
	}
}

func TestSearchBM25(t *testing.T) {
	c := newTestCorpus(
		"the war in iraq continued as troops advanced",
		"peace negotiations in geneva between diplomats",
		"war war war everywhere war",
		"the stock market rallied on strong earnings",
	)
	ix := BuildIndex(c)
	hits := ix.Search("war", 10)
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if hits[0].Doc != 2 {
		t.Fatalf("top hit = doc %d, want the war-heavy doc 2", hits[0].Doc)
	}
	if hits[0].Score <= hits[1].Score {
		t.Fatal("scores not descending")
	}
	if got := ix.Search("zzz unknown", 5); got != nil {
		t.Fatalf("unknown query returned %v", got)
	}
	if got := ix.Search("war", 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestSearchMultiTermFavorsBothTerms(t *testing.T) {
	c := newTestCorpus(
		"war in iraq with heavy fighting in baghdad",
		"war memorial opened in paris france today",
		"iraq oil exports resumed through southern ports",
	)
	ix := BuildIndex(c)
	hits := ix.Search("war iraq", 3)
	if len(hits) == 0 || hits[0].Doc != 0 {
		t.Fatalf("doc 0 (both terms) should rank first, got %v", hits)
	}
}

func TestDocFreq(t *testing.T) {
	c := newTestCorpus("war begins", "war ends", "peace holds")
	ix := BuildIndex(c)
	if ix.DocFreq("war") != 2 || ix.DocFreq("peace") != 1 || ix.DocFreq("absent") != 0 {
		t.Fatal("DocFreq wrong")
	}
	if ix.DocFreq("WAR") != 2 {
		t.Fatal("DocFreq should normalize case")
	}
}

func TestSnippetCentersOnMatches(t *testing.T) {
	filler := strings.Repeat("filler words keep going onward here ", 20)
	text := filler + "the treaty between france and germany was signed " + filler
	doc := &Document{Text: text}
	snip := Snippet(doc, "treaty france", 12)
	if !strings.Contains(snip, "treaty") {
		t.Fatalf("snippet %q does not contain the match", snip)
	}
	if len(snip) >= len(text) {
		t.Fatal("snippet not shorter than document")
	}
}

func TestSnippetShortDoc(t *testing.T) {
	doc := &Document{Text: "tiny document"}
	if got := Snippet(doc, "tiny", 30); got != "tiny document" {
		t.Fatalf("got %q", got)
	}
	if got := Snippet(&Document{Text: ""}, "x", 10); got != "" {
		t.Fatalf("empty doc snippet = %q", got)
	}
}

func TestSharedDictionaryAcrossCorpora(t *testing.T) {
	dict := NewDictionary()
	a := NewCorpusSharing(dict)
	b := NewCorpusSharing(dict)
	a.Add(&Document{Title: "t", Text: "war in iraq"})
	b.Add(&Document{Title: "t", Text: "war in europe"})
	a.DocTerms(0)
	b.DocTerms(0)
	if dict.Lookup("war") == NoTerm {
		t.Fatal("shared dictionary missing term")
	}
	// Same term must have the same ID seen from both corpora.
	idA := a.Dict().Lookup("war")
	idB := b.Dict().Lookup("war")
	if idA != idB {
		t.Fatal("IDs diverge across corpora sharing a dictionary")
	}
}

func TestQuickBinMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return Bin(x) <= Bin(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExtractTermsNeverPanics(t *testing.T) {
	f := func(s string) bool {
		for _, term := range ExtractTerms(s) {
			if term == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchAllConjunctive(t *testing.T) {
	c := newTestCorpus(
		"jacques chirac spoke in paris",
		"jacques delors stayed home",
		"chirac visited the summit",
	)
	ix := BuildIndex(c)
	hits := ix.SearchAll("jacques chirac", 10)
	if len(hits) != 1 || hits[0].Doc != 0 {
		t.Fatalf("conjunctive search got %v", hits)
	}
	// Disjunctive search matches all three.
	if got := ix.Search("jacques chirac", 10); len(got) != 3 {
		t.Fatalf("disjunctive search got %d hits", len(got))
	}
	// A term absent from the index empties the conjunction.
	if got := ix.SearchAll("jacques zzz", 10); got != nil {
		t.Fatalf("missing term should yield nil, got %v", got)
	}
	if got := ix.SearchAll("chirac", 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	// Duplicate query terms must not break the match count.
	if got := ix.SearchAll("chirac chirac", 10); len(got) != 2 {
		t.Fatalf("duplicate-term query got %d hits", len(got))
	}
}
