// Command facetserve builds a faceted browsing interface over a news
// archive and serves it over HTTP: a server-rendered front end at /, a
// versioned JSON API under /api/v1/ (facets, docs, dates, cross,
// metrics; the unversioned /api/ paths remain as deprecated aliases),
// and — with -live — streaming document intake with incremental facet
// rebuilds.
//
// Observability: GET /api/v1/metrics returns a JSON snapshot of every
// counter, gauge, and latency histogram (per-route HTTP metrics, ingest
// queue/epoch state, segment-store timing); -pprof additionally mounts
// the runtime profiler under /debug/pprof/; -access-log writes one JSON
// line per request to stderr.
//
// Batch mode (default) generates a corpus, extracts facets once, and
// serves the frozen interface:
//
//	facetserve [-addr :8080] [-docs 600] [-profile SNYT] [-seed 42]
//
// Live mode turns the server into a long-running ingestion service:
// documents POSTed to /api/v1/ingest stream through the extraction pipeline,
// the hierarchy is rebuilt every -epoch-docs documents (or -max-staleness
// interval), and the browsing interface is swapped atomically with zero
// downtime. With -store, accepted documents are durably persisted as
// append-only segments and a restarted server warm-starts from disk:
//
//	facetserve -live [-store DIR] [-epoch-docs 200] [-max-staleness 30s]
//
// Shutdown on SIGINT/SIGTERM is graceful: HTTP stops accepting, the
// intake queue drains, and a final epoch publishes and persists every
// accepted document before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	facet "repro"
	"repro/internal/browse"
	"repro/internal/ingest"
	"repro/internal/obsv"
	"repro/internal/serve"
	"repro/internal/textdb"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	docs := flag.Int("docs", 600, "number of documents to generate")
	profile := flag.String("profile", "SNYT", "dataset profile")
	seed := flag.Uint64("seed", 42, "seed")
	topK := flag.Int("topk", 120, "facet terms to extract")
	live := flag.Bool("live", false, "enable streaming ingestion (POST /api/v1/ingest) with incremental rebuilds")
	storeDir := flag.String("store", "", "segment store directory for durable intake (live mode; empty = in-memory only)")
	epochDocs := flag.Int("epoch-docs", 200, "rebuild the hierarchy after this many new documents (live mode)")
	maxStaleness := flag.Duration("max-staleness", 30*time.Second, "also rebuild when intake has waited this long (live mode; 0 disables)")
	queueSize := flag.Int("queue", 1024, "bounded intake queue capacity (live mode)")
	cacheSize := flag.Int("cache", 4096, "resource LRU cache entries (live mode)")
	pprofOn := flag.Bool("pprof", false, "mount the runtime profiler under /debug/pprof/")
	accessLog := flag.Bool("access-log", false, "write one JSON access-log line per request to stderr")
	flag.Parse()

	// One registry spans every layer: HTTP routes, the ingester, and the
	// segment store all surface through GET /api/v1/metrics.
	metrics := obsv.NewRegistry()
	serveOpts := []serve.Option{serve.WithMetrics(metrics)}
	if *accessLog {
		serveOpts = append(serveOpts, serve.WithAccessLog(os.Stderr))
	}

	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the initial document set: warm-start from the segment
	// store when it already holds documents, generate otherwise.
	var store *textdb.Store
	var initial []facet.Document
	warmStart := false
	if *live && *storeDir != "" {
		if store, err = textdb.OpenStore(*storeDir); err != nil {
			log.Fatal(err)
		}
		store.SetMetrics(metrics)
		if orphans, err := store.OrphanSegments(); err == nil && len(orphans) > 0 {
			log.Printf("note: %d orphan segment(s) in %s from an interrupted append", len(orphans), *storeDir)
		}
		if store.Docs() > 0 {
			corpus, err := store.LoadAll()
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < corpus.Len(); i++ {
				d := corpus.Doc(textdb.DocID(i))
				initial = append(initial, facet.Document{Title: d.Title, Source: d.Source, Date: d.Date, Text: d.Text})
			}
			warmStart = true
			log.Printf("warm-starting from %s: %d documents in %d segments", *storeDir, store.Docs(), store.Segments())
		}
	}
	if !warmStart && *docs > 0 {
		if initial, err = env.GenerateNewsCorpus(*profile, *docs, *seed+1); err != nil {
			log.Fatal(err)
		}
	}

	sys, err := facet.NewSystem(env, facet.Options{TopK: *topK})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range initial {
		sys.Add(d)
	}

	if !*live {
		serveBatch(sys, *addr, *profile, *topK, serveOpts, *pprofOn)
		return
	}

	ing, err := ingest.New(ingest.Config{
		Extractors:   sys.CoreExtractors(),
		Resources:    sys.CoreResources(),
		TopK:         *topK,
		QueueSize:    *queueSize,
		EpochDocs:    *epochDocs,
		MaxStaleness: *maxStaleness,
		CacheSize:    *cacheSize,
		Store:        store,
		Logf:         log.Printf,
		Metrics:      metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	bootstrap := make([]*textdb.Document, len(initial))
	for i, d := range initial {
		bootstrap[i] = &textdb.Document{Title: d.Title, Source: d.Source, Date: d.Date, Text: d.Text}
	}
	log.Printf("bootstrapping live pipeline over %d documents...", len(bootstrap))
	if err := ing.Bootstrap(bootstrap, !warmStart); err != nil {
		log.Fatal(err)
	}

	title := fmt.Sprintf("%s live archive — streaming ingestion enabled", *profile)
	srv := serve.New(ing.Current(), title, serveOpts...)
	srv.EnableIngest(ing)
	if *pprofOn {
		srv.EnablePprof()
	}
	ing.SetOnPublish(srv.Publish) // every epoch swaps the served interface
	ing.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// ctx cancels the instant the signal lands, so main must wait on this
	// channel — not ctx — or it exits while Close is still persisting the
	// final epoch.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("shutting down: draining intake and finishing the epoch...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		if err := ing.Close(shutdownCtx); err != nil {
			log.Printf("ingest close: %v", err)
		}
	}()
	st := ing.Stats()
	log.Printf("serving %s on %s (%d docs, %d facet terms)", title, *addr, st.DocsPublished, st.FacetTerms)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	log.Printf("shutdown complete: %d documents ingested, %d persisted", ing.Stats().DocsIngested, ing.Stats().PersistedDocs)
}

// serveBatch is the original frozen-corpus mode.
func serveBatch(sys *facet.System, addr, profile string, topK int, opts []serve.Option, pprofOn bool) {
	log.Printf("extracting facets from %d documents...", sys.Len())
	res, err := sys.ExtractFacets()
	if err != nil {
		log.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range res.StageReport() {
		log.Printf("stage %-20s %3d call(s)  %v", st.Stage, st.Calls, st.Total.Round(time.Millisecond))
	}
	iface, err := browseInterface(res, h)
	if err != nil {
		log.Fatal(err)
	}
	title := fmt.Sprintf("%s archive — %d stories, %d facet terms", profile, sys.Len(), len(res.Facets))
	srv := serve.New(iface, title, opts...)
	if pprofOn {
		srv.EnablePprof()
	}
	log.Printf("serving %s on %s", title, addr)
	log.Fatal(http.ListenAndServe(addr, srv))
}

// browseInterface reaches beneath the facade for the internal browse
// engine the HTTP server needs.
func browseInterface(res *facet.Result, h *facet.Hierarchy) (*browse.Interface, error) {
	return res.BrowseEngine(h)
}
