package hierarchy

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// agglomerativeBuilder is the registered "agglomerative" strategy:
// average-linkage agglomerative clustering over the per-term posting
// bitsets, following the cluster-then-name-then-merge shape of systems
// like OpenClio. Where subsumption asks an asymmetric question ("does x
// appear in almost every document y appears in?"), clustering asks a
// symmetric one ("do x and y cover similar document sets?") and derives
// the hierarchy from the merge order:
//
//  1. cluster — every surviving term starts as its own cluster; pairwise
//     similarity is the Jaccard overlap of posting lists, |x∧y| / |x∨y|,
//     computed with bitset.AndCount (only co-occurring pairs can be
//     similar, so the sweep skips empty intersections).
//  2. name — a cluster is named by its highest-DF member (ties broken
//     lexicographically): the most general term stands for the group.
//  3. merge — the closest pair of clusters (average linkage, Lance–
//     Williams update) merges while similarity ≥ MinSimilarity; the
//     losing cluster's name term attaches as a child of the winning
//     name. Each term therefore gains at most one parent, with
//     df(parent) ≥ df(child), so the forest is acyclic and DF-layered
//     by construction.
//
// The merge order is fully deterministic (ties on similarity resolve by
// the lexicographically smallest name pair) and workers only shard the
// initial similarity matrix, so the forest is identical at every worker
// count.
type agglomerativeBuilder struct{}

// Name implements Builder.
func (agglomerativeBuilder) Name() string { return "agglomerative" }

// Build implements Builder.
func (agglomerativeBuilder) Build(ctx context.Context, terms []string, docTerms [][]string, cfg BuildConfig) (*Forest, error) {
	minSim := cfg.Agglomerative.MinSimilarity
	if minSim == 0 {
		minSim = 0.25
	}
	if minSim < 0 || minSim > 1 {
		return nil, fmt.Errorf("hierarchy: min similarity %v outside [0,1]", minSim)
	}
	if cfg.MinDF == 0 {
		cfg.MinDF = 2
	}
	st := newTermStats(terms, docTerms, cfg.MinDF)
	uniq, sets, df, alive := st.uniq, st.sets, st.df, st.alive
	n := len(alive)

	// Pairwise Jaccard similarity over the alive terms. Row i is written
	// only by the worker that owns it, so the O(n²) AndCount sweep shards
	// like the subsumption sweep.
	sim := make([]float64, n*n)
	err := parallel.For(ctx, n, cfg.Workers, func(_, i int) {
		a := alive[i]
		for j := i + 1; j < n; j++ {
			b := alive[j]
			co := sets[a].AndCount(sets[b])
			if co == 0 {
				continue
			}
			union := df[a] + df[b] - co
			sim[i*n+j] = float64(co) / float64(union)
		}
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sim[j*n+i] = sim[i*n+j]
		}
	}

	// Each cluster tracks its size (for the average-linkage update) and
	// its name: the global index of the highest-DF member.
	active := make([]bool, n)
	size := make([]int, n)
	name := make([]int, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		name[i] = alive[i]
	}
	// moreGeneral reports whether term a should name a merged cluster
	// over term b: higher DF first, then lexicographically smaller.
	moreGeneral := func(a, b int) bool {
		if df[a] != df[b] {
			return df[a] > df[b]
		}
		return uniq[a] < uniq[b]
	}

	parentOf := make(map[int]int)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Closest active pair; ties resolve by the lexicographically
		// smallest (name_i, name_j) pair, which is scan order here since
		// clusters keep their creation slots and alive is sorted.
		bestI, bestJ, bestSim := -1, -1, 0.0
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if s := sim[i*n+j]; s > bestSim {
					bestI, bestJ, bestSim = i, j, s
				}
			}
		}
		if bestI < 0 || bestSim < minSim {
			break
		}
		// Name the merged cluster and record the hierarchy edge: the
		// less general name attaches under the more general one.
		winner, loser := name[bestI], name[bestJ]
		if moreGeneral(loser, winner) {
			winner, loser = loser, winner
		}
		parentOf[loser] = winner
		// Lance–Williams average-linkage update into slot bestI.
		for k := 0; k < n; k++ {
			if !active[k] || k == bestI || k == bestJ {
				continue
			}
			merged := (float64(size[bestI])*sim[bestI*n+k] + float64(size[bestJ])*sim[bestJ*n+k]) /
				float64(size[bestI]+size[bestJ])
			sim[bestI*n+k] = merged
			sim[k*n+bestI] = merged
		}
		size[bestI] += size[bestJ]
		name[bestI] = winner
		active[bestJ] = false
	}
	return assembleForest(st, parentOf), nil
}
