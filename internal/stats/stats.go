// Package stats implements the statistical machinery of the paper's
// Step 3 (Section IV-C): Dunning's log-likelihood statistic for binomial
// frequency comparison (Dunning 1993), and — as the comparator the paper
// argues against — Pearson's chi-square test, whose assumptions break on
// power-law term frequencies. The ablation experiment (DESIGN.md A1)
// contrasts the two.
package stats

import "math"

// LogL computes log L(p, k, n) = k·log(p) + (n−k)·log(1−p), with the
// standard convention 0·log(0) = 0.
func LogL(p float64, k, n int) float64 {
	var out float64
	if k > 0 {
		if p <= 0 {
			return math.Inf(-1)
		}
		out += float64(k) * math.Log(p)
	}
	if n-k > 0 {
		if p >= 1 {
			return math.Inf(-1)
		}
		out += float64(n-k) * math.Log(1-p)
	}
	return out
}

// LogLikelihood computes the paper's −log λ statistic for a term with
// document frequency df in the original database and dfC in the
// contextualized database, both over n documents:
//
//	−log λ = log L(p1, dfC, n) + log L(p2, df, n)
//	       − log L(p, df, n) − log L(p, dfC, n)
//
// with p1 = dfC/n, p2 = df/n, p = (p1+p2)/2. The value is ≥ 0 and grows
// with the significance of the frequency difference.
func LogLikelihood(df, dfC, n int) float64 {
	if n <= 0 {
		return 0
	}
	p1 := float64(dfC) / float64(n)
	p2 := float64(df) / float64(n)
	p := (p1 + p2) / 2
	v := LogL(p1, dfC, n) + LogL(p2, df, n) - LogL(p, df, n) - LogL(p, dfC, n)
	if v < 0 {
		// Floating-point guard; analytically the statistic is non-negative.
		return 0
	}
	return v
}

// ChiSquare computes Pearson's chi-square statistic for the same 2×2
// contingency setup (term presence/absence in original vs. contextualized
// collections of n documents each). The paper notes this test is
// unreliable for text frequencies because the expected counts are tiny in
// the Zipfian tail; it is provided for the ablation comparison.
func ChiSquare(df, dfC, n int) float64 {
	if n <= 0 {
		return 0
	}
	// Observed: [df, n-df; dfC, n-dfC].
	o := [4]float64{float64(df), float64(n - df), float64(dfC), float64(n - dfC)}
	rowTotals := [2]float64{float64(n), float64(n)}
	colTotals := [2]float64{o[0] + o[2], o[1] + o[3]}
	grand := 2 * float64(n)
	var chi float64
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			e := rowTotals[r] * colTotals[c] / grand
			if e <= 0 {
				continue
			}
			d := o[r*2+c] - e
			chi += d * d / e
		}
	}
	return chi
}

// PPMI computes the positive pointwise mutual information between two
// terms from document counts: co documents contain both, dfX contain the
// first, dfY the second, out of n documents. PMI compares the observed
// co-occurrence probability with the independence expectation,
//
//	PMI = log( (co/n) / ((dfX/n)·(dfY/n)) ) = log( co·n / (dfX·dfY) ),
//
// and PPMI clips the negative range to zero: terms co-occurring LESS
// than chance carry no associative signal for context derivation
// (Church & Hanks 1990; the standard weighting for distributional
// vectors). Degenerate inputs (any count <= 0, co > dfX or dfY) return 0.
func PPMI(co, dfX, dfY, n int) float64 {
	if co <= 0 || dfX <= 0 || dfY <= 0 || n <= 0 || co > dfX || co > dfY {
		return 0
	}
	v := math.Log(float64(co) * float64(n) / (float64(dfX) * float64(dfY)))
	if v < 0 {
		return 0
	}
	return v
}

// AssocLLR computes Dunning's log-likelihood association statistic
// between two terms from the same document counts PPMI takes: it
// contrasts the rate of the second term among the dfX documents that
// contain the first (co/dfX) with its rate in the remaining n−dfX
// documents ((dfY−co)/(n−dfX)). Like LogLikelihood, the value is ≥ 0
// and grows with the significance of the dependence — but unlike PPMI it
// rewards evidence mass, so a pair seen in 40 of 400 documents outranks
// one seen in 1 of 10 at the same lift. Degenerate inputs return 0.
func AssocLLR(co, dfX, dfY, n int) float64 {
	if co <= 0 || dfX <= 0 || dfY <= 0 || n <= 0 || co > dfX || co > dfY || dfX > n || dfY > n {
		return 0
	}
	k1, n1 := co, dfX
	k2, n2 := dfY-co, n-dfX
	p1 := float64(k1) / float64(n1)
	p := float64(dfY) / float64(n)
	var p2 float64
	if n2 > 0 {
		p2 = float64(k2) / float64(n2)
	}
	v := LogL(p1, k1, n1) - LogL(p, k1, n1)
	if n2 > 0 {
		v += LogL(p2, k2, n2) - LogL(p, k2, n2)
	}
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
