package resilient

import (
	"errors"
	"sync"
)

// ErrOpen is returned by Breaker.Allow (and by wrapped calls) while the
// circuit is open: the call was shed without reaching the dependency.
var ErrOpen = errors.New("resilient: circuit open")

// State is a circuit breaker's position.
type State int32

const (
	// Closed: calls flow; consecutive failures are counted.
	Closed State = iota
	// Open: calls are shed with ErrOpen until the cooldown elapses.
	Open
	// HalfOpen: calls are delivered as probes; enough consecutive
	// successes close the circuit, any failure reopens it.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes the state machine.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// circuit. 0 selects 5; a negative value disables the breaker
	// entirely (Allow always admits, the state stays Closed).
	Threshold int
	// Cooldown is how many calls are shed while open before the next
	// call is admitted as a half-open probe. Counting shed calls instead
	// of wall-clock time keeps the machine deterministic on the virtual
	// clock (a dead resource with no traffic costs nothing either way).
	// 0 selects 8.
	Cooldown int
	// Probes is the number of consecutive half-open successes required
	// to close the circuit. 0 selects 2.
	Probes int
}

func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.Threshold == 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 8
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 2
	}
	return cfg
}

// Breaker is a closed→open→half-open circuit breaker. It is safe for
// concurrent use. Invariants (fuzz-checked by FuzzBreaker):
//
//   - while Open, no call is delivered — Allow returns ErrOpen — until
//     Cooldown calls have been shed;
//   - while HalfOpen, every call is delivered (it is a probe);
//   - a failure in HalfOpen reopens immediately; Probes consecutive
//     successes close.
type Breaker struct {
	mu     sync.Mutex
	cfg    BreakerConfig
	onTrip func()

	state   State
	consec  int // consecutive failures while closed
	shed    int // calls shed since opening
	probeOK int // consecutive successes while half-open
}

// NewBreaker returns a closed breaker. onTrip, when non-nil, fires on
// every closed/half-open → open transition (it is called with the lock
// held; keep it cheap — the metrics counter increment it exists for is).
func NewBreaker(cfg BreakerConfig, onTrip func()) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), onTrip: onTrip}
}

// Allow reports whether a call may proceed. ErrOpen means the call is
// shed; a nil return means the call must be delivered and its outcome
// reported through Success or Failure.
func (b *Breaker) Allow() error {
	if b.cfg.Threshold < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		if b.shed >= b.cfg.Cooldown {
			b.state = HalfOpen
			b.probeOK = 0
			return nil // this call is the probe
		}
		b.shed++
		return ErrOpen
	default: // Closed, HalfOpen: deliver
		return nil
	}
}

// Success reports a delivered call that succeeded.
func (b *Breaker) Success() {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.consec = 0
	case HalfOpen:
		b.probeOK++
		if b.probeOK >= b.cfg.Probes {
			b.state = Closed
			b.consec = 0
		}
	}
}

// Failure reports a delivered call that failed.
func (b *Breaker) Failure() {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.consec++
		if b.consec >= b.cfg.Threshold {
			b.trip()
		}
	case HalfOpen:
		b.trip()
	}
}

// trip opens the circuit; the caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.shed = 0
	b.consec = 0
	b.probeOK = 0
	if b.onTrip != nil {
		b.onTrip()
	}
}

// State returns the breaker's current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
