package facet

import (
	"strings"
	"testing"
)

func testEnv(t *testing.T) *Environment {
	t.Helper()
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func loadedSystem(t *testing.T, n int) *System {
	t.Helper()
	env := testEnv(t)
	docs, err := env.GenerateNewsCorpus("SNYT", n, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(env, Options{TopK: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	env := testEnv(t)
	if _, err := NewSystem(nil, Options{}); err == nil {
		t.Fatal("nil environment accepted")
	}
	if _, err := NewSystem(env, Options{TopK: -1}); err == nil {
		t.Fatal("negative TopK accepted")
	}
	if _, err := NewSystem(env, Options{Extractors: []string{"bogus"}}); err == nil {
		t.Fatal("unknown extractor accepted")
	}
	if _, err := NewSystem(env, Options{Resources: []string{"bogus"}}); err == nil {
		t.Fatal("unknown resource accepted")
	}
}

func TestGenerateNewsCorpusProfiles(t *testing.T) {
	env := testEnv(t)
	for _, p := range []string{"SNYT", "SNB", "MNYT"} {
		docs, err := env.GenerateNewsCorpus(p, 20, 3)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(docs) != 20 {
			t.Fatalf("%s: %d docs", p, len(docs))
		}
	}
	if _, err := env.GenerateNewsCorpus("BOGUS", 5, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestExtractFacetsEndToEnd(t *testing.T) {
	sys := loadedSystem(t, 150)
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facets) == 0 {
		t.Fatal("no facets extracted")
	}
	// Evidence invariants on every extracted term.
	for _, f := range res.Facets {
		if f.ShiftF <= 0 || f.ShiftR <= 0 {
			t.Fatalf("facet %q violates shift gates: %+v", f.Term, f)
		}
		if f.DFC <= f.DF {
			t.Fatalf("facet %q has no frequency gain", f.Term)
		}
		if f.Score < 0 {
			t.Fatalf("facet %q has negative score", f.Term)
		}
	}
	// Scores descending.
	for i := 1; i < len(res.Facets); i++ {
		if res.Facets[i].Score > res.Facets[i-1].Score {
			t.Fatal("facets not sorted by score")
		}
	}
	// The headline property: at least one multi-word general facet term
	// that never appears in any document (DF == 0 yet highly ranked).
	foundLatent := false
	for _, f := range res.Facets {
		if f.DF == 0 && f.DFC > 5 {
			foundLatent = true
			break
		}
	}
	if !foundLatent {
		t.Fatal("no latent facet term (DF=0) extracted — the paper's core phenomenon")
	}
}

func TestExtractFacetsEmptySystem(t *testing.T) {
	env := testEnv(t)
	sys, _ := NewSystem(env, Options{})
	if _, err := sys.ExtractFacets(); err == nil {
		t.Fatal("empty system should error")
	}
}

func TestHierarchyAndBrowser(t *testing.T) {
	sys := loadedSystem(t, 150)
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() == 0 || len(h.Roots()) == 0 {
		t.Fatal("empty hierarchy")
	}
	b, err := res.Browser(h)
	if err != nil {
		t.Fatal(err)
	}
	roots := b.Children("", Selection{})
	if len(roots) == 0 {
		t.Fatal("no browsable root facets")
	}
	top := roots[0]
	if b.Count(top.Term) != top.Count {
		t.Fatalf("Count mismatch for %q", top.Term)
	}
	docs := b.Docs(Selection{Terms: []string{top.Term}})
	if len(docs) != top.Count {
		t.Fatalf("Docs returned %d, count says %d", len(docs), top.Count)
	}
	// Drill-down must never grow the set.
	kids := b.Children(top.Term, Selection{Terms: []string{top.Term}})
	for _, k := range kids {
		if k.Count > top.Count {
			t.Fatalf("child %q larger than parent", k.Term)
		}
	}
	// Keyword restriction shrinks or keeps.
	d0 := sys.Document(0)
	word := strings.Fields(d0.Title)[0]
	all := len(b.Docs(Selection{}))
	filtered := len(b.Docs(Selection{Query: word}))
	if filtered > all {
		t.Fatal("query grew the selection")
	}
}

func TestSelectiveExtractorsAndResources(t *testing.T) {
	env := testEnv(t)
	docs, _ := env.GenerateNewsCorpus("SNYT", 80, 9)
	sys, err := NewSystem(env, Options{
		TopK:       50,
		Extractors: []string{"Wikipedia"},
		Resources:  []string{"Wikipedia Graph"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facets) == 0 {
		t.Fatal("single extractor/resource produced nothing")
	}
}

func TestVirtualNetworkTime(t *testing.T) {
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 1, ChargeLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	docs, _ := env.GenerateNewsCorpus("SNYT", 10, 2)
	sys, _ := NewSystem(env, Options{TopK: 20})
	for _, d := range docs {
		sys.Add(d)
	}
	if _, err := sys.ExtractFacets(); err != nil {
		t.Fatal(err)
	}
	if env.VirtualNetworkTime() == 0 {
		t.Fatal("latency charging enabled but no virtual time accumulated")
	}
	// Without charging, zero.
	env2 := testEnv(t)
	if env2.VirtualNetworkTime() != 0 {
		t.Fatal("uncharged environment reports time")
	}
}

func TestBuildHierarchyMethods(t *testing.T) {
	sys := loadedSystem(t, 120)
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []HierarchyMethod{HierarchySubsumption, HierarchyEvidence, HierarchyTreeMin, "agglomerative"} {
		h, err := res.BuildHierarchyWith(m)
		if err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
		if h.Size() == 0 {
			t.Fatalf("method %v produced empty hierarchy", m)
		}
		if _, err := res.Browser(h); err != nil {
			t.Fatalf("method %v: browser: %v", m, err)
		}
	}
	if _, err := res.BuildHierarchyWith("bogus"); err == nil {
		t.Fatal("unknown builder name accepted")
	}
}

// TestHierarchyBuilderOption: Options.HierarchyBuilder selects the
// default strategy for BuildHierarchy, round-tripping through
// NewSystem → ExtractFacetsContext → Result.
func TestHierarchyBuilderOption(t *testing.T) {
	env := testEnv(t)
	docs, err := env.GenerateNewsCorpus("SNYT", 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(env, Options{TopK: 100, HierarchyBuilder: "agglomerative"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	viaOption, err := res.BuildHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := res.BuildHierarchyWith("agglomerative")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := viaOption.FormatTree(), explicit.FormatTree(); got != want {
		t.Fatalf("BuildHierarchy() ignored Options.HierarchyBuilder:\n--- option ---\n%s\n--- explicit ---\n%s", got, want)
	}
	subsumption, err := res.BuildHierarchyWith(HierarchySubsumption)
	if err != nil {
		t.Fatal(err)
	}
	if viaOption.FormatTree() == subsumption.FormatTree() && len(viaOption.Roots()) == len(subsumption.Roots()) {
		t.Log("agglomerative and subsumption agree on this corpus (unusual but not wrong)")
	}
	if _, err := NewSystem(env, Options{HierarchyBuilder: "bogus"}); err == nil {
		t.Fatal("unknown HierarchyBuilder accepted by NewSystem")
	}
}

func TestGlossaryIntegration(t *testing.T) {
	env := testEnv(t)
	// A tiny financial corpus with glossary-only extraction and a
	// thesaurus-only resource — the Section VII scenario.
	docs := []Document{
		{Title: "markets", Text: "The hedge fund reported gains while the pension fund struggled with margin calls."},
		{Title: "markets", Text: "A hedge fund manager discussed derivatives and margin requirements."},
		{Title: "banking", Text: "The pension fund bought derivatives to offset interest rate risk."},
		{Title: "banking", Text: "Regulators examined derivatives and margin lending at the hedge fund."},
	}
	gloss, err := NewGlossaryExtractor("Finance Glossary", []string{"hedge fund", "pension fund", "derivatives", "margin"})
	if err != nil {
		t.Fatal(err)
	}
	thes, err := NewGlossaryResource("Finance Thesaurus", map[string][]string{
		"hedge fund":   {"alternative investments", "asset management"},
		"pension fund": {"institutional investors", "asset management"},
		"derivatives":  {"financial instruments", "risk management"},
		"margin":       {"leverage", "risk management"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(env, Options{
		TopK:            20,
		ExtraExtractors: []TermExtractor{gloss},
		ExtraResources:  []ContextResource{thes},
		Extractors:      []string{"NE"}, // avoid the news extractors dominating
		Resources:       []string{"Wikipedia Synonyms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, f := range res.Facets {
		found[f.Term] = true
	}
	if !found["risk management"] || !found["asset management"] {
		t.Fatalf("glossary expansion terms missing: %v", res.Terms())
	}
}

func TestBrowserDateHistogram(t *testing.T) {
	sys := loadedSystem(t, 100)
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Browser(h)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := b.DateHistogram(Selection{}, "day")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, bucket := range hist {
		total += bucket.Count
	}
	if total != sys.Len() {
		t.Fatalf("histogram covers %d docs of %d", total, sys.Len())
	}
	if _, err := b.DateHistogram(Selection{}, "century"); err == nil {
		t.Fatal("bad granularity accepted")
	}
	// A date-range selection restricts Docs.
	if len(hist) > 0 {
		sel := Selection{From: hist[0].Bucket, To: hist[0].Bucket.AddDate(0, 0, 1)}
		if got := len(b.Docs(sel)); got != hist[0].Count {
			t.Fatalf("range selection got %d docs, histogram says %d", got, hist[0].Count)
		}
	}
}
